"""The simulation loop and generator-based processes.

The kernel is a classic discrete-event loop: ``(time, seq, event)`` entries
popped in order; popping an event runs its callbacks, which resume waiting
processes.  Processes are plain Python generators that yield
:class:`~repro.sim.events.Event` objects.

Two interchangeable schedulers back the loop (see
:mod:`repro.sim.scheduler` for the design rationale):

- ``scheduler="array"`` (the default): a comparison-free FIFO ring for
  due-now events plus a calendar/sorted two-tier queue for timed events;
- ``scheduler="heap"``: the original single binary heap, kept as the
  differential-testing oracle.

Both produce bit-identical pop order and sequence numbering — the golden
trace digests and ``tests/sim/test_scheduler_differential.py`` hold them
to it.

Determinism: ties on time are broken by a monotonically increasing sequence
number, so two runs with the same seed produce identical schedules.
"""

from __future__ import annotations

import heapq
import typing
from bisect import insort
from collections import deque
from math import inf

from repro.sim.events import (
    _PENDING as _SENTINEL_PENDING,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.scheduler import CalendarQueue

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.sanitizer import TraceDigest

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulation.run` early."""


class Simulation:
    """The discrete-event loop and simulated clock.

    Typical use::

        sim = Simulation()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.0
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_process", "_trace",
                 "events_processed", "_fifo", "_cal")

    def __init__(self, scheduler: str = "array") -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active_process: Process | None = None
        #: Total events popped over this simulation's lifetime (perf
        #: instrumentation: events/s is the kernel's native throughput).
        self.events_processed: int = 0
        #: Determinism sanitizer hook; when set, every popped event is fed
        #: into its running digest.  ``None`` (the default) costs one
        #: ``is`` test per step.
        self._trace: "TraceDigest | None" = None
        # Scheduler selection.  ``_fifo is None`` is the mode discriminator
        # checked inline at every push site (events.py, resources.py, and
        # this module): a method call per push would eat the win.
        if scheduler == "array":
            self._fifo: "deque[tuple[float, int, Event]] | None" = deque()
            self._cal: CalendarQueue | None = CalendarQueue()
        elif scheduler == "heap":
            self._fifo = None
            self._cal = None
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected 'array' or 'heap'")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduler_kind(self) -> str:
        """Which scheduler backs this simulation: ``"array"`` or ``"heap"``."""
        return "heap" if self._fifo is None else "array"

    def scheduler_depths(self) -> dict[str, int]:
        """Pending-entry counts per scheduler tier (test introspection)."""
        if self._fifo is None:
            return {"heap": len(self._heap)}
        assert self._cal is not None
        depths = self._cal.depths()
        depths["fifo"] = len(self._fifo)
        return depths

    @property
    def active_process(self) -> "Process | None":
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        ``delay`` must be non-negative: a negative delay would schedule an
        event *before* already-queued ones and silently corrupt the heap's
        time ordering.  :class:`~repro.sim.events.Timeout` enforces this.
        """
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, daemon: bool = False,
                eager: bool = False) -> "Process":
        """Start ``generator`` as a process; returns its completion event.

        ``daemon`` marks a fire-and-forget process: if nothing is waiting
        on it when it finishes successfully, no completion event is
        scheduled (the handle is marked processed directly, so late
        joiners still work, and failures are always scheduled so they
        surface).

        ``eager`` advances the generator to its first yield synchronously
        instead of scheduling an init event at the current time.  The
        process's first actions (resource claims, sends) then happen at
        spawn rather than after one extra pop of the event loop — correct
        whenever spawn order is the ordering that matters, as it is for
        message transmission and dispatch (FIFO NICs and mailboxes
        preserve per-node ordering either way, and the timestamp is
        identical).  Leave it off for processes whose first actions race
        other same-time processes through a shared resource.

        Message dispatch and transmission — one process each per message —
        use both flags to keep ~2 pops per message off the heap.
        """
        return Process(self, generator, daemon=daemon, eager=eager)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(
                f"cannot schedule an event {-delay} seconds into the past")
        fifo = self._fifo
        if fifo is None:
            heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        elif delay == 0.0:
            fifo.append((self._now, self._seq, event))
        else:
            cal = self._cal
            assert cal is not None
            entry = (self._now + delay, self._seq, event)
            if entry[0] < cal.bucket_end:
                insort(cal.run, entry)
            else:
                heapq.heappush(cal.far, entry)
        self._seq += 1

    def _next_entry(self) -> "tuple[float, int, Event] | None":
        """The earliest pending array-scheduler entry, without removing it."""
        assert self._fifo is not None and self._cal is not None
        timed = self._cal.head()
        if self._fifo:
            first = self._fifo[0]
            if timed is None or first < timed:
                return first
        return timed

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._fifo is None:
            return self._heap[0][0] if self._heap else inf
        entry = self._next_entry()
        return entry[0] if entry is not None else inf

    def set_trace(self, trace: "TraceDigest | None") -> None:
        """Install (or remove) the determinism-sanitizer trace hook."""
        self._trace = trace

    def step(self) -> None:
        """Pop and process a single event."""
        if self._fifo is None:
            when, _seq, event = heapq.heappop(self._heap)
        else:
            assert self._cal is not None
            timed = self._cal.head()
            if self._fifo and (timed is None or self._fifo[0] < timed):
                when, _seq, event = self._fifo.popleft()
            elif timed is not None:
                when, _seq, event = self._cal.pop()
            else:
                raise IndexError("step() on an empty schedule")
        self._now = when
        self.events_processed += 1
        if self._trace is not None:
            self._trace.record(when, _seq, event)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody waited on this failed event: surface the error rather
            # than letting it pass silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the schedule drains, ``until`` passes, or an event fires.

        ``until`` may be a simulated-time horizon (float), an event (run until
        it fires and return its value), or ``None`` (drain all events).

        The pop/dispatch loop is the simulator's hottest code: it is
        deliberately inlined (rather than calling :meth:`step`) with
        hoisted locals.  One loop exists per scheduler; they are
        behaviourally identical — same pops, same order — and the
        golden-digest suite (``tests/fabric/test_golden_digests``) plus the
        differential scheduler tests hold them to that contract.
        """
        if self._fifo is None:
            return self._run_heap(until)
        return self._run_array(until)

    def _run_array(self, until: float | Event | None) -> typing.Any:
        # The array-scheduler loop.  Selection is a two-way head comparison
        # (FIFO ring vs current calendar bucket): the far tier holds only
        # entries at or beyond bucket_end, so it can never own the minimum,
        # and FIFO entries (time <= now < bucket_end) always precede it too.
        stop_event: Event | None = None
        # inf instead of None: one float compare per pop, no None test.
        horizon = inf
        explicit_horizon = False
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            explicit_horizon = True
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
        fifo = self._fifo
        cal = self._cal
        assert fifo is not None and cal is not None
        fifo_popleft = fifo.popleft
        # run/run_idx are hoisted loop-locals, synced back in the finally
        # block.  Callbacks may insort new entries into cal.run (growing it
        # behind run_idx is impossible: fresh pushes land after the consumed
        # prefix because their time exceeds now), so len(run) is re-read
        # every iteration while run_idx stays private to this frame.
        run = cal.run
        run_idx = cal.run_idx
        far = cal.far
        steps = 0
        try:
            while True:
                if run_idx < len(run):
                    entry = run[run_idx]
                    if fifo and fifo[0] < entry:
                        entry = fifo_popleft()
                    else:
                        run_idx += 1
                elif fifo:
                    entry = fifo_popleft()
                elif far:
                    cal.advance()
                    run = cal.run
                    run_idx = 0
                    continue
                else:
                    break
                when = entry[0]
                if when > horizon:
                    # Un-pop so the next bounded run() resumes exactly here.
                    if run_idx > 0 and entry is run[run_idx - 1]:
                        run_idx -= 1
                    else:
                        fifo.appendleft(entry)
                    self._now = horizon
                    return None
                event = entry[2]
                self._now = when
                steps += 1
                trace = self._trace
                if trace is not None:
                    trace.record(when, entry[1], event)
                callbacks = event.callbacks
                event.callbacks = None
                # callbacks is never None here: a popped event has not been
                # processed before (each entry is pushed exactly once).
                for callback in callbacks:  # type: ignore[union-attr]
                    callback(event)
                if not event._ok and not event.defused:
                    # Nobody waited on this failed event: surface the error
                    # rather than letting it pass silently.
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self.events_processed += steps
            cal.run_idx = run_idx
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before `until` event fired")
        if explicit_horizon:
            # The schedule drained before the horizon; advance the clock so
            # repeated bounded runs observe monotonic time.
            self._now = max(self._now, horizon)
        return None

    def _run_heap(self, until: float | Event | None) -> typing.Any:
        # The legacy binary-heap loop, preserved verbatim as the
        # differential-testing oracle for the array scheduler.
        stop_event: Event | None = None
        horizon: float | None = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
        heap = self._heap
        pop = heapq.heappop
        steps = 0
        try:
            while heap:
                if horizon is not None and heap[0][0] > horizon:
                    self._now = horizon
                    return None
                when, _seq, event = pop(heap)
                self._now = when
                steps += 1
                trace = self._trace
                if trace is not None:
                    trace.record(when, _seq, event)
                callbacks = event.callbacks
                event.callbacks = None
                assert callbacks is not None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    # Nobody waited on this failed event: surface the error
                    # rather than letting it pass silently.
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self.events_processed += steps
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before `until` event fired")
        if horizon is not None:
            # The heap drained before reaching the horizon; advance the clock
            # so repeated bounded runs observe monotonic time.
            self._now = max(self._now, horizon)
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        event.defused = True
        raise event.value


class _EagerInitSentinel:
    """Stand-in for the init event of eager process spawns.

    ``Process._resume`` reads only ``_ok``/``_value`` from a successful
    event, and an eager init is invisible to everything else, so a single
    shared instance replaces ~10^5 per-run Event allocations.
    """

    __slots__ = ()

    _ok = True
    _value = None
    defused = False


_EAGER_INIT = typing.cast(Event, _EagerInitSentinel())


class Process(Event):
    """A running generator, resumable by the events it yields.

    A ``Process`` is itself an event: it fires when the generator returns
    (success, with the return value) or raises (failure).  Other processes
    may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_send", "_target", "_daemon")

    def __init__(self, sim: Simulation, generator: ProcessGenerator,
                 daemon: bool = False, eager: bool = False) -> None:
        # Event.__init__ inlined: one Process per message/dispatch/VSCC job
        # makes even the super() frame measurable.
        self.sim = sim
        self.callbacks = []
        self._value = _SENTINEL_PENDING
        self._ok = True
        self.defused = False
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        # Bound method cached once: _resume runs ~10^6 times per reference
        # run and the send attribute lookup is measurable there.
        self._send = generator.send
        self._daemon = daemon
        if eager:
            # Advance to the first yield right now, with no init event.
            # _resume clears the active process on exit, so the spawning
            # process's slot is saved and restored around the nested call.
            # The init "event" is a shared pre-succeeded sentinel: _resume
            # only reads ._ok/._value from it and an eager init is never
            # waited on, so one allocation serves every eager spawn.
            self._target: Event | None = None
            previous = sim._active_process
            self._resume(_EAGER_INIT)
            sim._active_process = previous
            return
        # Kick off the generator at the current time via an initial event
        # (pre-succeeded, scheduled directly on the heap).
        init = Event(sim)
        init._value = None
        assert init.callbacks is not None
        init.callbacks.append(self._resume)
        fifo = sim._fifo
        if fifo is None:
            heapq.heappush(sim._heap, (sim._now, sim._seq, init))
        else:
            fifo.append((sim._now, sim._seq, init))
        sim._seq += 1
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        """The generator's function name, for diagnostics."""
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered asynchronously (via a failed event) so the
        interrupter continues running first.
        """
        if not self.is_alive:
            return
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks = [self._resume_interrupt]
        self.sim._enqueue(event)

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from whatever the process was waiting on; the stale callback
        # must be removed so the old target cannot resume us twice.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # This is the single hottest function in a reference run (once per
        # process resume, ~10^6 times): advancing the generator and
        # re-registering on its next yield happen in one frame rather than
        # a _resume -> _step call pair.
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                next_target = self._send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            if self._daemon and not self.callbacks:
                # Nobody joined this fire-and-forget process: complete it
                # in place instead of scheduling a no-op pop.  A later
                # yield of the handle takes the already-processed path.
                self._value = stop.value
                self.callbacks = None
            else:
                self.succeed(stop.value)
            return
        except BaseException as error:
            sim._active_process = None
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(error)
            return
        sim._active_process = None
        # The callbacks attribute doubles as the Event type check: anything
        # else a process yields lacks it (cheaper than an isinstance per
        # resume, and the attribute is needed right after anyway).
        try:
            target_callbacks = next_target.callbacks
        except AttributeError:
            raise TypeError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event") from None
        if target_callbacks is None:
            # Already processed: resume immediately-ish (at current time).
            resume = Event(sim)
            resume._ok = next_target._ok
            resume._value = next_target._value
            if not next_target._ok:
                next_target.defused = True
                resume.defused = True
            resume.callbacks = [self._resume]
            fifo = sim._fifo
            if fifo is None:
                heapq.heappush(sim._heap, (sim._now, sim._seq, resume))
            else:
                fifo.append((sim._now, sim._seq, resume))
            sim._seq += 1
            self._target = resume
        else:
            target_callbacks.append(self._resume)
            self._target = next_target
