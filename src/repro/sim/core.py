"""The simulation loop and generator-based processes.

The kernel is a classic discrete-event loop: a heap of ``(time, seq, event)``
entries, popped in order; popping an event runs its callbacks, which resume
waiting processes.  Processes are plain Python generators that yield
:class:`~repro.sim.events.Event` objects.

Determinism: ties on time are broken by a monotonically increasing sequence
number, so two runs with the same seed produce identical schedules.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.sanitizer import TraceDigest

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulation.run` early."""


class Simulation:
    """The discrete-event loop and simulated clock.

    Typical use::

        sim = Simulation()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active_process: Process | None = None
        #: Determinism sanitizer hook; when set, every popped event is fed
        #: into its running digest.  ``None`` (the default) costs one
        #: ``is`` test per step.
        self._trace: "TraceDigest | None" = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> "Process | None":
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        ``delay`` must be non-negative: a negative delay would schedule an
        event *before* already-queued ones and silently corrupt the heap's
        time ordering, so it is rejected here (and again in
        :class:`~repro.sim.events.Timeout` for direct constructions).
        """
        if delay < 0:
            raise ValueError(
                f"timeout delay must be >= 0, got {delay} "
                f"(a negative delay would schedule into the past)")
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> "Process":
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(
                f"cannot schedule an event {-delay} seconds into the past")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def set_trace(self, trace: "TraceDigest | None") -> None:
        """Install (or remove) the determinism-sanitizer trace hook."""
        self._trace = trace

    def step(self) -> None:
        """Pop and process a single event."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if self._trace is not None:
            self._trace.record(when, _seq, event)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody waited on this failed event: surface the error rather
            # than letting it pass silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the heap drains, ``until`` seconds pass, or an event fires.

        ``until`` may be a simulated-time horizon (float), an event (run until
        it fires and return its value), or ``None`` (drain all events).
        """
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
        try:
            while self._heap:
                if stop_event is None and until is not None:
                    if self.peek() > float(until):
                        self._now = float(until)
                        return None
                self.step()
        except StopSimulation as stop:
            return stop.args[0]
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before `until` event fired")
        if stop_event is None and until is not None:
            # The heap drained before reaching the horizon; advance the clock
            # so repeated bounded runs observe monotonic time.
            self._now = max(self._now, float(until))
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        event.defused = True
        raise event.value


class Process(Event):
    """A running generator, resumable by the events it yields.

    A ``Process`` is itself an event: it fires when the generator returns
    (success, with the return value) or raises (failure).  Other processes
    may therefore ``yield`` a process to join it.
    """

    def __init__(self, sim: Simulation, generator: ProcessGenerator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self._target: Event | None = None
        # Kick off the generator at the current time via an initial event.
        init = Event(sim)
        init.succeed()
        init.callbacks.append(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        """The generator's function name, for diagnostics."""
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered asynchronously (via a failed event) so the
        interrupter continues running first.
        """
        if not self.is_alive:
            return
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks = [self._resume_interrupt]
        self.sim._enqueue(event)

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from whatever the process was waiting on; the stale callback
        # must be removed so the old target cannot resume us twice.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event)

    def _step(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.sim._active_process = None
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(error)
            return
        self.sim._active_process = None
        if not isinstance(next_target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event")
        if next_target.processed:
            # Already fired: resume immediately-ish (at current time).
            resume = Event(self.sim)
            resume._ok = next_target._ok
            resume._value = next_target._value
            if not next_target._ok:
                next_target.defused = True
                resume.defused = True
            resume.callbacks = [self._resume]
            self.sim._enqueue(resume)
            self._target = resume
        else:
            next_target.callbacks.append(self._resume)
            self._target = next_target
