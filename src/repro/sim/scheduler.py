"""Array-backed event scheduling: the calendar/sorted two-tier timer queue.

The kernel's original scheduler was a single binary heap of
``(time, seq, event)`` tuples.  Profiling reference runs shows the pop
stream splits into three sharply different populations:

- **due-now events** (~half of all pushes): ``succeed()``/``fail()``,
  resource grants, store handoffs, and process-init events, all scheduled
  at the *current* simulation time;
- **short-horizon timeouts** (~45%): CPU service slices, NIC
  serialization, link latencies, endorsement/ordering/Batch timeouts —
  almost all within a few milliseconds of *now*;
- **far-future events** (a few percent): end-of-run horizons, client
  endorsement timeouts, election timers.

This module exploits that shape.  Due-now events go to a plain FIFO ring
(:attr:`Simulation._fifo` — a deque): because the clock never moves
backwards and the sequence number rises monotonically, appends arrive
*already sorted* by ``(time, seq)``, so push is O(1) with zero
comparisons and pop is ``popleft``.  Timed events go to the
:class:`CalendarQueue` below: a rotating *current bucket* holds the
sorted run of entries inside the active time window (``bucket_end`` keeps
advancing), and a binary-heap *far tier* holds everything beyond it.
Popping the global minimum is then a single head-to-head comparison
between the FIFO and the current bucket — the far tier never competes
(every far entry is provably later than every bucket entry).

Design notes (measured on CPython 3.11, reference perfbench scenarios):

- Entries stay ``(time, seq, event)`` tuples rather than literal parallel
  ``array('d')``/``array('q')`` columns: the tuple *is* the comparison
  key, so C-level ``list.sort``/``bisect``/``heapq`` operate on it
  directly; splitting the columns forces the comparisons back into
  Python, which benchmarked ~40% slower.  The "array-backed" win here is
  the flat, index-consumed current bucket (no per-pop sift) plus the
  comparison-free FIFO ring.
- The bucket width trades insort cost in the current bucket against
  migration traffic from the far tier; 5 ms keeps reference-run buckets
  at a few hundred entries, where ``bisect``'s memmove is cheaper than a
  heap sift.

Pop order is bit-identical to the binary heap — same ``(time, seq)``
total order, same sequence-number assignment — which
``tests/sim/test_scheduler_differential.py`` and the golden digests
enforce; the legacy heap remains available as
``Simulation(scheduler="heap")`` precisely so the two implementations can
be diffed forever.
"""

from __future__ import annotations

import typing
from bisect import insort
from heapq import heappop, heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: One scheduled occurrence: the tuple is its own comparison key.
Entry = typing.Tuple[float, int, "Event"]

#: Default current-bucket width in simulated seconds (see module docs).
DEFAULT_BUCKET_WIDTH = 0.005


class CalendarQueue:
    """The timed tiers: a sorted current bucket plus a far-future heap.

    Invariants (enforced by construction, checked by the property suite):

    - ``run[run_idx:]`` is sorted ascending by ``(time, seq)`` and every
      entry's time is ``< bucket_end``;
    - every entry in ``far`` has time ``>= bucket_end`` *at all times*
      (``bucket_end`` only grows, and pushes route on it);
    - the consumed prefix ``run[:run_idx]`` holds only entries whose time
      is ``<= now``, so a fresh push (time ``> now``) can never belong
      inside it — ``insort`` over the whole list is therefore safe.

    The hot simulation loop manipulates ``run``/``run_idx`` directly (as
    hoisted locals, synced back on exit); everything else goes through
    the methods.
    """

    __slots__ = ("width", "run", "run_idx", "bucket_end", "far")

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH,
                 start: float = 0.0) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        self.width = width
        #: Sorted entries of the current bucket; consumed by index.
        self.run: list[Entry] = []
        #: First unconsumed position in :attr:`run`.
        self.run_idx = 0
        #: Exclusive upper time bound of the current bucket.
        self.bucket_end = start + width
        #: Min-heap of entries at or beyond :attr:`bucket_end`.
        self.far: list[Entry] = []

    def __len__(self) -> int:
        return len(self.run) - self.run_idx + len(self.far)

    def push(self, entry: Entry) -> None:
        """File ``entry`` into the bucket or the far tier by its time."""
        if entry[0] < self.bucket_end:
            insort(self.run, entry)
        else:
            heappush(self.far, entry)

    def head(self) -> Entry | None:
        """The earliest timed entry, or ``None``; advances buckets lazily."""
        if self.run_idx >= len(self.run):
            if not self.far:
                return None
            self.advance()
        return self.run[self.run_idx]

    def pop(self) -> Entry:
        """Remove and return the earliest timed entry."""
        entry = self.head()
        if entry is None:
            raise IndexError("pop from an empty CalendarQueue")
        self.run_idx += 1
        return entry

    def advance(self) -> None:
        """Rotate to the bucket anchored at the earliest far entry.

        Precondition: the current bucket is exhausted and the far tier is
        non-empty.  Entries within one bucket width of the earliest far
        entry migrate into a freshly sorted run; ``bucket_end`` jumps
        directly there (empty buckets are never visited).
        """
        far = self.far
        bucket_end = far[0][0] + self.width
        run: list[Entry] = []
        append = run.append
        while far and far[0][0] < bucket_end:
            append(heappop(far))
        run.sort()
        self.run = run
        self.run_idx = 0
        self.bucket_end = bucket_end

    def depths(self) -> dict[str, int]:
        """Tier populations, for tests and scheduler introspection."""
        return {"run": len(self.run) - self.run_idx, "far": len(self.far)}
