"""Runtime determinism sanitizer: trace digests, double-run diffing, ties.

The static side of the determinism contract lives in
:mod:`repro.analysis_tools.simlint`; this module is the *runtime* side:

- :class:`TraceDigest` hashes every ``(time, seq, event-type, owner)`` pop
  of the simulation loop into one SHA-256 digest.  Two same-seed runs of a
  deterministic model produce byte-identical digests; any divergence —
  schedule reordering, an extra event, a perturbed RNG stream — changes it.
- :func:`run_twice_and_diff` runs a workload factory twice with identical
  inputs and, on divergence, reports the *first* event where the two
  schedules disagree (the closest thing a simulator has to a race report).
- The tie auditor inside :class:`TraceDigest` counts same-timestamp pops
  that resume *different* processes: those orderings are decided purely by
  heap insertion order, i.e. they are the places where an innocent refactor
  can legally reorder the schedule.  High tie counts mean the model leans
  hard on insertion order; the examples list names the processes involved.

Attach with :meth:`repro.sim.core.Simulation.set_trace`; overhead when
detached is one ``is None`` test per event.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

# Runtime import is safe (core does not import sanitizer at runtime) and
# keeps the per-event hot path free of repeated module lookups.
from repro.sim.core import Process

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulation
    from repro.sim.events import Event


class TraceRecord(typing.NamedTuple):
    """One popped event, as fed into the digest."""

    time: float
    seq: int
    event_type: str
    owner: str

    def format(self) -> str:
        return (f"t={self.time:.9f} seq={self.seq} "
                f"{self.event_type} -> {self.owner}")


class TieRecord(typing.NamedTuple):
    """Two consecutive same-time pops owned by different processes."""

    time: float
    first_owner: str
    second_owner: str


def _owner_of(event: "Event") -> str:
    """A stable label for the process(es) an event belongs to / resumes.

    A :class:`~repro.sim.core.Process` completion event is labelled with
    its own generator name; any other event with the names of the
    processes its callbacks resume (bound ``_resume`` methods).  A
    process's completion pop therefore shares its label with the resumes
    that drove it, so the tie auditor only counts ties between genuinely
    *distinct* processes.  Memory addresses are deliberately excluded —
    labels must be identical across runs.
    """
    if isinstance(event, Process):
        return event.name
    names: list[str] = []
    for callback in event.callbacks or ():
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            names.append(owner.name)
    if names:
        return ",".join(names)
    return "-"


class TraceDigest:
    """Streaming SHA-256 over the event schedule, plus a tie audit.

    With ``keep_records=True`` (the default) every record is also kept in
    memory so :func:`diff_records` can pinpoint the first divergence; for
    very long runs where only the digest matters, pass ``False``.
    """

    #: Cap on stored tie examples (the count is always exact).
    MAX_TIE_EXAMPLES = 32

    def __init__(self, sim: "Simulation", keep_records: bool = True) -> None:
        self.sim = sim
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []
        self.events_recorded = 0
        self.tie_count = 0
        self.tie_examples: list[TieRecord] = []
        self._hash = hashlib.sha256()
        # (time, owner) of the previous pop — a bare tuple, not a
        # TraceRecord, so digest-only runs allocate nothing per event
        # beyond the hashed line itself.
        self._previous: tuple[float, str] | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "TraceDigest":
        """Install this digest as the simulation's trace hook."""
        self.sim.set_trace(self)
        return self

    def detach(self) -> None:
        if self.sim._trace is self:
            self.sim.set_trace(None)

    # ------------------------------------------------------------------
    # Recording (called from Simulation.step)
    # ------------------------------------------------------------------

    def record(self, when: float, seq: int, event: "Event") -> None:
        # Inlined _owner_of: this method runs once per popped event, so a
        # digested reference run pays it ~10^6 times.
        if isinstance(event, Process):
            owner = event.name
        else:
            owner = "-"
            callbacks = event.callbacks
            if callbacks:
                names: list[str] | None = None
                for callback in callbacks:
                    target = getattr(callback, "__self__", None)
                    if isinstance(target, Process):
                        if names is None:
                            names = [target.name]
                        else:
                            names.append(target.name)
                if names is not None:
                    owner = names[0] if len(names) == 1 else ",".join(names)
        event_type = type(event).__name__
        # float.hex() is exact: two times digest equal iff bit-identical.
        self._hash.update(
            f"{when.hex()}|{seq}|{event_type}|{owner}\n".encode("utf-8"))
        self.events_recorded += 1
        if self.keep_records:
            self.records.append(TraceRecord(
                time=when, seq=seq, event_type=event_type, owner=owner))
        previous = self._previous
        if (previous is not None and previous[0] == when
                and previous[1] != owner
                and owner != "-" and previous[1] != "-"):
            self.tie_count += 1
            if len(self.tie_examples) < self.MAX_TIE_EXAMPLES:
                self.tie_examples.append(TieRecord(
                    time=when, first_owner=previous[1],
                    second_owner=owner))
        self._previous = (when, owner)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def hexdigest(self) -> str:
        """Digest over everything recorded so far."""
        return self._hash.hexdigest()


@dataclasses.dataclass
class Divergence:
    """The first event at which two same-seed schedules disagree."""

    index: int
    left: TraceRecord | None
    right: TraceRecord | None

    def format(self) -> str:
        left = self.left.format() if self.left else "<schedule ended>"
        right = self.right.format() if self.right else "<schedule ended>"
        return (f"first divergence at event #{self.index}:\n"
                f"  run A: {left}\n"
                f"  run B: {right}")


@dataclasses.dataclass
class DeterminismReport:
    """Outcome of a same-input double run."""

    identical: bool
    digest_a: str
    digest_b: str
    events_a: int
    events_b: int
    tie_count: int
    tie_examples: list[TieRecord]
    divergence: Divergence | None

    def render(self) -> str:
        lines = []
        if self.identical:
            lines.append(
                f"DETERMINISTIC: {self.events_a} events, "
                f"digest {self.digest_a[:16]}… identical across runs")
        else:
            lines.append(
                f"NON-DETERMINISTIC: digests differ "
                f"({self.digest_a[:16]}… vs {self.digest_b[:16]}…, "
                f"{self.events_a} vs {self.events_b} events)")
            if self.divergence is not None:
                lines.append(self.divergence.format())
        lines.append(
            f"tie audit: {self.tie_count} same-timestamp adjacent pops "
            f"across distinct processes (insertion-order dependent)")
        for tie in self.tie_examples[:5]:
            lines.append(f"  tie at t={tie.time:.9f}: "
                         f"{tie.first_owner} | {tie.second_owner}")
        return "\n".join(lines)


def diff_records(left: list[TraceRecord],
                 right: list[TraceRecord]) -> Divergence | None:
    """First index at which two schedules disagree, or ``None``."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return Divergence(index=index, left=a, right=b)
    if len(left) != len(right):
        index = min(len(left), len(right))
        return Divergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None)
    return None


def run_twice_and_diff(
        run: typing.Callable[[], TraceDigest],
        keep_records: bool = True) -> DeterminismReport:
    """Run ``run`` twice and compare the schedules it produces.

    ``run`` must build a *fresh* simulation from identical inputs (same
    seed, same config), execute it with an attached :class:`TraceDigest`,
    and return that digest.  The :func:`digest_run` helper wraps the
    common build-attach-run pattern.
    """
    first = run()
    second = run()
    divergence = None
    identical = first.hexdigest == second.hexdigest
    if not identical and keep_records:
        divergence = diff_records(first.records, second.records)
    return DeterminismReport(
        identical=identical,
        digest_a=first.hexdigest, digest_b=second.hexdigest,
        events_a=first.events_recorded, events_b=second.events_recorded,
        tie_count=first.tie_count,
        tie_examples=list(first.tie_examples),
        divergence=divergence)


def digest_run(sim: "Simulation",
               drive: typing.Callable[[], typing.Any],
               keep_records: bool = True) -> TraceDigest:
    """Attach a digest to ``sim``, call ``drive()``, detach, return it."""
    digest = TraceDigest(sim, keep_records=keep_records).attach()
    try:
        drive()
    finally:
        digest.detach()
    return digest
