"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes yield
events to the simulation loop and are resumed when the event fires.  Events
may succeed (carrying a value) or fail (carrying an exception, which is
re-raised inside the waiting process).
"""

from __future__ import annotations

import typing
from bisect import insort
from heapq import heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulation

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (created, not yet fired),
    *triggered* (scheduled to fire at the current simulation time), and
    *processed* (callbacks have run).  Waiting processes register callbacks;
    the simulation loop invokes them when the event is popped from the heap.

    Events are the kernel's unit of allocation — hundreds of thousands per
    reference run — so the whole hierarchy uses ``__slots__`` and triggering
    pushes straight onto the simulation heap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: typing.Any = _PENDING
        self._ok: bool = True
        # Set True once a failure's traceback has been consumed by a waiter,
        # so unhandled failures can be surfaced at the end of a run.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        fifo = sim._fifo
        if fifo is None:
            heappush(sim._heap, (sim._now, sim._seq, self))
        else:
            fifo.append((sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        sim = self.sim
        fifo = sim._fifo
        if fifo is None:
            heappush(sim._heap, (sim._now, sim._seq, self))
        else:
            fifo.append((sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float,
                 value: typing.Any = None) -> None:
        if delay < 0:
            raise ValueError(
                f"timeout delay must be >= 0, got {delay} "
                f"(a negative delay would schedule into the past)")
        # Event.__init__ is inlined: timeouts are the single most common
        # allocation in a run, and the attribute values differ anyway
        # (a timeout is born carrying its value).
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay
        fifo = sim._fifo
        if fifo is None:
            heappush(sim._heap, (sim._now + delay, sim._seq, self))
        elif delay == 0.0:
            fifo.append((sim._now, sim._seq, self))
        else:
            # CalendarQueue.push inlined: timeouts are the dominant timed
            # push and the extra method frame showed up in sampling profiles.
            cal = sim._cal
            entry = (sim._now + delay, sim._seq, self)
            if entry[0] < cal.bucket_end:  # type: ignore[union-attr]
                insort(cal.run, entry)  # type: ignore[union-attr]
            else:
                heappush(cal.far, entry)  # type: ignore[union-attr]
        sim._seq += 1

    @property
    def triggered(self) -> bool:
        # A timeout is born triggered: its value is fixed at creation.
        return True


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> typing.Any:
        """The cause passed to :meth:`repro.sim.core.Process.interrupt`."""
        return self.args[0]


class ConditionValue:
    """Mapping of events to values for fired :class:`AnyOf` / :class:`AllOf`.

    Supports ``event in result`` and ``result[event]`` so callers can ask
    which of the awaited events fired first and with what value.
    """

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> typing.Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<ConditionValue {len(self.events)} events>"


class _Condition(Event):
    """Base for composite events over a fixed list of sub-events."""

    __slots__ = ("_events", "_fired")

    def __init__(self, sim: "Simulation", events: typing.Sequence[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._fired: list[Event] = []
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulations")
        # Register on sub-events after validating all of them.  An event
        # counts as fired only once *processed* (its callbacks have run):
        # a pending Timeout already carries its value but has not fired yet.
        for event in self._events:
            if event.processed:
                self._on_sub_event(event)
            else:
                event.callbacks.append(self._on_sub_event)
        self._check(initial=True)

    def _on_sub_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._fired.append(event)
        self._check(initial=False)

    def _check(self, initial: bool) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        if not self.triggered:
            self.succeed(ConditionValue(list(self._fired)))


class AnyOf(_Condition):
    """Fires when the first of the given events fires.

    With an empty event list it fires immediately (vacuous truth mirrors
    SimPy's behaviour and keeps fan-in loops simple).
    """

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if self._fired or not self._events:
            self._finish()


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if len(self._fired) == len(self._events):
            self._finish()
