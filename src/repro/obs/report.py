"""Automated bottleneck attribution from spans and resource monitors.

The paper locates Fabric's bottleneck by measuring each phase separately
(§V): the validate phase saturates first.  :func:`bottleneck_report` makes
the same attribution directly from instrumentation — it ranks every
monitored resource by windowed utilization, flags the phase owning the
most saturated resource, and reports p50/p95/p99 durations per span type
from streaming histograms, so "which component is the bottleneck and by
how much" is a first-class output rather than something inferred from
throughput curves.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.stats import StreamingHistogram
from repro.obs.sampler import ResourceMonitor
from repro.obs.tracer import Tracer

#: A resource above this utilization counts as saturated.
SATURATION_THRESHOLD = 0.8


@dataclasses.dataclass
class ResourceUsage:
    """Windowed usage summary of one monitored resource."""

    name: str
    kind: str
    phase: str
    capacity: int
    utilization: float
    mean_queue: float
    max_queue: int
    grants: int
    wait_mean: float
    wait_p50: float
    wait_p95: float
    wait_p99: float

    @property
    def saturated(self) -> bool:
        return self.utilization >= SATURATION_THRESHOLD

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SpanStats:
    """Duration statistics for one span type."""

    name: str
    category: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    wait_mean: float

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class BottleneckReport:
    """The attribution: ranked resources, span latencies, the verdict."""

    window: tuple[float, float] | None
    resources: list[ResourceUsage]          # ranked, most utilized first
    spans: list[SpanStats]                  # alphabetical by span name
    bottleneck: ResourceUsage | None        # top-ranked resource, if any
    saturated_phase: str                    # phase of the bottleneck or ""

    def resource(self, name: str) -> ResourceUsage:
        for usage in self.resources:
            if usage.name == name:
                return usage
        raise KeyError(name)

    def span_stats(self, name: str) -> SpanStats:
        for stats in self.spans:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "window": list(self.window) if self.window else None,
            "saturated_phase": self.saturated_phase,
            "bottleneck": (self.bottleneck.as_dict()
                           if self.bottleneck else None),
            "resources": [usage.as_dict() for usage in self.resources],
            "spans": [stats.as_dict() for stats in self.spans],
        }

    def render(self, top: int = 12) -> str:
        """Human-readable report, most saturated resources first."""
        lines = []
        if self.window:
            lines.append(f"Bottleneck report over simulated "
                         f"[{self.window[0]:.2f}s, {self.window[1]:.2f}s)")
        else:
            lines.append("Bottleneck report (whole run)")
        if self.bottleneck is not None:
            verdict = ("SATURATED" if self.bottleneck.saturated
                       else "not saturated")
            lines.append(
                f"bottleneck: {self.bottleneck.name} "
                f"(phase={self.bottleneck.phase or '-'}, "
                f"utilization={self.bottleneck.utilization:.3f}, {verdict})")
            if self.saturated_phase:
                lines.append(f"saturated phase: {self.saturated_phase}")
        lines.append("")
        lines.append(f"{'resource':<36} {'phase':<9} {'util':>6} "
                     f"{'avg q':>7} {'max q':>5} {'wait p95':>9}")
        for usage in self.resources[:top]:
            lines.append(
                f"{usage.name:<36} {usage.phase or '-':<9} "
                f"{usage.utilization:>6.3f} {usage.mean_queue:>7.2f} "
                f"{usage.max_queue:>5d} {usage.wait_p95:>8.4f}s")
        if self.spans:
            lines.append("")
            lines.append(f"{'span':<24} {'count':>7} {'mean':>9} "
                         f"{'p50':>9} {'p95':>9} {'p99':>9}")
            for stats in self.spans:
                lines.append(
                    f"{stats.name:<24} {stats.count:>7d} "
                    f"{stats.mean:>8.4f}s {stats.p50:>8.4f}s "
                    f"{stats.p95:>8.4f}s {stats.p99:>8.4f}s")
        return "\n".join(lines)


def _usage_for(monitor: ResourceMonitor, start: float | None,
               end: float | None) -> ResourceUsage:
    waits = monitor.waits
    return ResourceUsage(
        name=monitor.name,
        kind=monitor.kind,
        phase=monitor.phase,
        capacity=monitor.capacity,
        utilization=monitor.utilization(start, end),
        mean_queue=monitor.mean_queue(start, end),
        max_queue=monitor.max_queue,
        grants=monitor.grants,
        wait_mean=waits.mean,
        wait_p50=waits.percentile(50),
        wait_p95=waits.percentile(95),
        wait_p99=waits.percentile(99),
    )


def span_statistics(tracer: Tracer, start: float | None = None,
                    end: float | None = None) -> list[SpanStats]:
    """Per-span-type duration stats over spans *starting* in the window."""
    histograms: dict[str, StreamingHistogram] = {}
    wait_totals: dict[str, float] = {}
    categories: dict[str, str] = {}
    maxima: dict[str, float] = {}
    for span in tracer.spans:
        if span.start is None or span.end is None:
            continue
        if start is not None and span.start < start:
            continue
        if end is not None and span.start >= end:
            continue
        histogram = histograms.get(span.name)
        if histogram is None:
            histogram = histograms[span.name] = StreamingHistogram()
            wait_totals[span.name] = 0.0
            categories[span.name] = span.category
            maxima[span.name] = 0.0
        duration = span.end - span.start
        histogram.add(duration)
        maxima[span.name] = max(maxima[span.name], duration)
        if span.wait is not None:
            wait_totals[span.name] += span.wait
    stats = []
    for name in sorted(histograms):
        histogram = histograms[name]
        stats.append(SpanStats(
            name=name,
            category=categories[name],
            count=histogram.count,
            mean=histogram.mean,
            p50=histogram.percentile(50),
            p95=histogram.percentile(95),
            p99=histogram.percentile(99),
            max=maxima[name],
            wait_mean=(wait_totals[name] / histogram.count
                       if histogram.count else 0.0),
        ))
    return stats


def bottleneck_report(tracer: Tracer,
                      monitors: typing.Mapping[str, ResourceMonitor],
                      start: float | None = None,
                      end: float | None = None) -> BottleneckReport:
    """Rank resources by utilization and attribute the bottleneck.

    ``start``/``end`` bound the analysis to a measurement window (defaults
    to each monitor's lifetime).  The bottleneck is the highest-utilization
    server pool; the saturated phase is that resource's phase when its
    utilization passes :data:`SATURATION_THRESHOLD`.
    """
    usages = [_usage_for(monitor, start, end)
              for monitor in monitors.values()]
    # Server pools rank by utilization; pure queues sort below them by
    # mean depth (they cannot saturate, only reflect upstream pressure).
    usages.sort(key=lambda u: (u.utilization, u.mean_queue, u.name),
                reverse=True)
    pools = [usage for usage in usages if usage.capacity > 0]
    bottleneck = pools[0] if pools else (usages[0] if usages else None)
    saturated_phase = ""
    if bottleneck is not None and bottleneck.saturated:
        saturated_phase = bottleneck.phase or bottleneck.kind
    window = None
    if start is not None and end is not None:
        window = (start, end)
    return BottleneckReport(
        window=window,
        resources=usages,
        spans=span_statistics(tracer, start, end),
        bottleneck=bottleneck,
        saturated_phase=saturated_phase,
    )
