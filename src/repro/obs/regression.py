"""Perf-regression gate: diff two benchmark / trace-summary files.

Compares a *candidate* measurement file against a *baseline* (both the
``BENCH_*.json`` format written by ``repro perfbench --out`` or the
trace-summary format written by ``repro trace --summary-out``), computes
per-scenario metric deltas, and classifies each against a tolerance —
the engine behind ``repro obs-diff``, which exits non-zero on any
regression so CI can hold the line at the last accepted baseline.

Gated by default are the *deterministic* metrics only — simulated
throughput (``sim_tps`` / ``throughput_tps``), simulated latency, and
the kernel event count (a proxy for simulator work per run: more events
for the same workload means the simulation got more expensive).
Wall-clock (``wall_s``) is machine-dependent, so it is reported but
gated only when an explicit wall tolerance is supplied — comparing
wall-clock across different machines would be noise, not signal.  The
kernel event rate (``events_per_s`` = events / wall-clock) is equally
machine-dependent and follows the same opt-in pattern behind
``--tol-events-rate``: ungated by default, gated when a tolerance is
supplied (the kernel-throughput guard for a pinned CI runner).
"""

from __future__ import annotations

import dataclasses
import json
import typing


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """How one metric is compared."""

    key: str
    higher_is_better: bool
    gate: str        # "deterministic", "wall", or "rate"


#: Metrics recognised in measurement entries, in report order.
METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("sim_tps", higher_is_better=True, gate="deterministic"),
    MetricSpec("throughput_tps", higher_is_better=True,
               gate="deterministic"),
    MetricSpec("avg_latency_s", higher_is_better=False,
               gate="deterministic"),
    MetricSpec("events", higher_is_better=False, gate="deterministic"),
    MetricSpec("wall_s", higher_is_better=False, gate="wall"),
    MetricSpec("events_per_s", higher_is_better=True, gate="rate"),
)


@dataclasses.dataclass
class MetricDelta:
    """One metric compared across baseline and candidate."""

    scenario: str
    metric: str
    baseline: float
    candidate: float
    change: float          # relative; positive = metric went up
    regression: bool
    gated: bool            # False: reported only, never fails the gate

    def describe(self) -> str:
        arrow = "worse" if self.regression else "ok"
        gate = "" if self.gated else " (not gated)"
        return (f"{self.scenario}: {self.metric} {self.baseline:g} -> "
                f"{self.candidate:g} ({self.change:+.2%}) {arrow}{gate}")


@dataclasses.dataclass
class DiffResult:
    """The full comparison: per-metric deltas plus scenario bookkeeping."""

    deltas: list[MetricDelta]
    missing: list[str]      # scenarios in baseline but not candidate
    added: list[str]        # scenarios in candidate but not baseline
    skipped: list[str]      # present in both but not comparable (scale)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "ok": self.ok,
            "regressions": [dataclasses.asdict(d) for d in self.regressions],
            "deltas": [dataclasses.asdict(d) for d in self.deltas],
            "missing_scenarios": self.missing,
            "added_scenarios": self.added,
            "skipped_scenarios": self.skipped,
        }


def load_measurements(path: str) -> dict[str, dict[str, typing.Any]]:
    """Load a measurement file into ``{scenario: {metric: value}}``.

    Accepts the perfbench format (mapping of scenario name to metric
    row) and the single-scenario trace-summary format (a flat object
    carrying ``throughput_tps`` etc.), which is wrapped under its
    ``scenario`` key (default ``"trace"``).
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    if any(spec.key in data for spec in METRICS):
        # Flat single-scenario summary.
        return {str(data.get("scenario", "trace")): data}
    entries: dict[str, dict[str, typing.Any]] = {}
    for name, row in data.items():
        if isinstance(row, dict):
            entries[str(name)] = row
    return entries


def compare_measurements(
        baseline: typing.Mapping[str, typing.Mapping[str, typing.Any]],
        candidate: typing.Mapping[str, typing.Mapping[str, typing.Any]],
        tolerance: float = 0.05,
        wall_tolerance: float | None = None,
        events_rate_tolerance: float | None = None) -> DiffResult:
    """Diff candidate against baseline.

    A gated metric regresses when it moves in its bad direction by more
    than the tolerance (relative).  ``wall_tolerance=None`` (default)
    leaves wall-clock ungated; ``events_rate_tolerance=None`` likewise
    leaves the kernel event rate (``events_per_s``) ungated — both are
    host-dependent, so gating them only makes sense against a baseline
    recorded on the same machine.  Scenarios whose ``scale`` fields
    differ are skipped: a smoke run is not comparable to a full run.
    """
    deltas: list[MetricDelta] = []
    skipped: list[str] = []
    for name in sorted(baseline):
        if name not in candidate:
            continue
        base_row, cand_row = baseline[name], candidate[name]
        base_scale = base_row.get("scale")
        cand_scale = cand_row.get("scale")
        if base_scale is not None and cand_scale is not None \
                and base_scale != cand_scale:
            skipped.append(name)
            continue
        for spec in METRICS:
            if spec.key not in base_row or spec.key not in cand_row:
                continue
            base_value = float(base_row[spec.key])
            cand_value = float(cand_row[spec.key])
            change = ((cand_value - base_value) / abs(base_value)
                      if base_value else
                      (0.0 if cand_value == base_value else float("inf")))
            if spec.gate == "deterministic":
                gated, limit = True, tolerance
            elif spec.gate == "wall":
                gated = wall_tolerance is not None
                limit = wall_tolerance if gated else 0.0
            elif spec.gate == "rate":
                gated = events_rate_tolerance is not None
                limit = events_rate_tolerance if gated else 0.0
            else:
                gated, limit = False, 0.0
            bad_change = -change if spec.higher_is_better else change
            regression = gated and bad_change > limit
            deltas.append(MetricDelta(
                scenario=name, metric=spec.key, baseline=base_value,
                candidate=cand_value, change=change,
                regression=regression, gated=gated))
    missing = [name for name in sorted(baseline)
               if name not in candidate]
    added = [name for name in sorted(candidate)
             if name not in baseline]
    return DiffResult(deltas=deltas, missing=missing, added=added,
                      skipped=skipped)


def diff_files(baseline_path: str, candidate_path: str,
               tolerance: float = 0.05,
               wall_tolerance: float | None = None,
               events_rate_tolerance: float | None = None) -> DiffResult:
    """Convenience wrapper: load both files and compare."""
    return compare_measurements(load_measurements(baseline_path),
                                load_measurements(candidate_path),
                                tolerance=tolerance,
                                wall_tolerance=wall_tolerance,
                                events_rate_tolerance=events_rate_tolerance)


def render_diff(result: DiffResult, verbose: bool = False) -> str:
    """Human-readable gate output: regressions first, then notes."""
    lines: list[str] = []
    if result.regressions:
        lines.append(f"PERF REGRESSIONS ({len(result.regressions)}):")
        lines.extend(f"  {d.describe()}" for d in result.regressions)
    if result.missing:
        lines.append("Scenarios missing from candidate: "
                     + ", ".join(result.missing))
    if result.skipped:
        lines.append("Skipped (scale mismatch): "
                     + ", ".join(result.skipped))
    if result.added:
        lines.append("New scenarios (not gated): "
                     + ", ".join(result.added))
    if verbose or not result.deltas:
        compared = sorted({d.scenario for d in result.deltas})
        lines.append(f"Compared {len(compared)} scenario(s): "
                     + (", ".join(compared) if compared else "none"))
        lines.extend(f"  {d.describe()}" for d in result.deltas
                     if not d.regression)
    if result.ok:
        lines.append("obs-diff: no regressions against baseline")
    else:
        lines.append("obs-diff: FAILED")
    return "\n".join(lines)
