"""The observability bundle: one tracer + monitors + sampler per run."""

from __future__ import annotations

import typing

from repro.obs.report import BottleneckReport, bottleneck_report
from repro.obs.sampler import (
    ResourceMonitor,
    UtilizationSampler,
    watch_resource,
    watch_store,
)
from repro.obs.tracer import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.collector import MetricsCollector
    from repro.obs.critical_path import CriticalPathSummary
    from repro.obs.queueing import QueueingReport
    from repro.sim.core import Simulation
    from repro.sim.resources import Resource, Store


class Observability:
    """Everything needed to observe one simulation run.

    Create one, install ``obs.tracer`` as the context's tracer *before*
    driving load, register the resources to watch, then::

        obs.start_sampler(until=horizon)
        sim.run(until=horizon)
        report = obs.report(window_start, window_end)
        obs.write_chrome_trace("trace.json")
    """

    def __init__(self, sim: "Simulation",
                 sample_interval: float = 0.05) -> None:
        self.sim = sim
        self.tracer = Tracer(sim)
        self.monitors: dict[str, ResourceMonitor] = {}
        self.sampler = UtilizationSampler(sim, self.monitors,
                                          interval=sample_interval)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def watch_resource(self, resource: "Resource", name: str | None = None,
                       kind: str = "resource",
                       phase: str = "") -> ResourceMonitor:
        """Monitor a server pool; returns the attached monitor."""
        monitor = watch_resource(resource, name, kind=kind, phase=phase)
        monitor.tracer = self.tracer
        self.monitors[monitor.name] = monitor
        return monitor

    def watch_store(self, store: "Store", name: str | None = None,
                    phase: str = "") -> ResourceMonitor:
        """Monitor a queue's depth; returns the attached monitor."""
        monitor = watch_store(store, name, phase=phase)
        monitor.tracer = self.tracer
        self.monitors[monitor.name] = monitor
        return monitor

    def monitor(self, name: str) -> ResourceMonitor:
        return self.monitors[name]

    # ------------------------------------------------------------------
    # Sampling lifecycle
    # ------------------------------------------------------------------

    def start_sampler(self, until: float | None = None) -> None:
        """Start periodic checkpointing (bounded by ``until`` if given)."""
        self.sampler.start(until)

    def finish(self) -> None:
        """Take one final checkpoint so integrals cover the full run."""
        self.sampler.sample()

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------

    def report(self, start: float | None = None,
               end: float | None = None) -> BottleneckReport:
        """Bottleneck attribution over ``[start, end)`` (default: all)."""
        return bottleneck_report(self.tracer, self.monitors, start, end)

    def queueing_report(self,
                        tolerance: float | None = None) -> QueueingReport:
        """Per-resource wait/service stats with the Little's-law check."""
        from repro.obs.queueing import LITTLE_TOLERANCE, queueing_report

        return queueing_report(
            self.monitors,
            tolerance=LITTLE_TOLERANCE if tolerance is None else tolerance)

    def critical_path_summary(
            self, metrics: MetricsCollector) -> CriticalPathSummary:
        """Aggregated critical-path attribution for committed txs."""
        from repro.obs.critical_path import (
            extract_critical_paths,
            summarize_critical_paths,
        )

        return summarize_critical_paths(
            extract_critical_paths(self.tracer, metrics))

    def counter_events(self) -> list[dict[str, typing.Any]]:
        """Chrome counter events for every monitor's busy-server series."""
        events: list[dict[str, typing.Any]] = []
        for monitor in self.monitors.values():
            for when, busy in monitor.busy_series():
                events.append({
                    "name": monitor.name,
                    "ph": "C",
                    "ts": round(when * 1e6, 3),
                    "node": monitor.name.split(".", 1)[0],
                    "args": {"busy": round(busy, 4)},
                })
        return events

    def to_chrome_trace(self,
                        counters: bool = True) -> dict[str, typing.Any]:
        """The full run as Chrome ``trace_event`` JSON (spans + counters)."""
        extra = self.counter_events() if counters else None
        return self.tracer.to_chrome_trace(extra_events=extra)

    def write_chrome_trace(self, path: str, counters: bool = True) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(counters=counters), handle)
