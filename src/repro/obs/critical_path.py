"""Per-transaction causal critical paths over recorded spans.

A transaction's end-to-end latency is determined by one *chain* of
intervals: the endorsement that finished last, the broadcast hop, the
block cut that included it, the validator pipeline on its anchor peer,
and the state-database commit — plus the transit/queueing gaps between
them.  This module reconstructs that chain per transaction from the
:class:`~repro.obs.tracer.Tracer`'s spans and the
:class:`~repro.metrics.collector.MetricsCollector`'s lifecycle records,
then aggregates *where the e2e seconds actually went* per phase and per
span kind — the attribution the utilization-style bottleneck report
cannot give (a saturated resource off the critical path does not cost
latency; a half-idle one on it does).

Extraction is a backward greedy walk from the commit timestamp: at each
point pick the candidate span with the latest end not after the current
position, emit it as a path segment, and jump to its start.  Intervals
no candidate covers become ``(transit)`` segments — network hops,
delivery fan-out, and queueing that is not inside any recorded span —
attributed to the phase of the segment *downstream* of the gap (the
consumer the transaction was travelling towards).

Candidate spans per transaction:

- its own per-tx spans (``endorse``, ``order.broadcast``,
  ``validate.vscc``) on any node;
- shared ordering spans (``order.block``, consensus backend spans) on
  any node — blocks are shared infrastructure;
- shared validate/statedb spans on the transaction's *anchor peer* (the
  peer whose commit notification defines the client's commit time).

Wrapper spans that enclose entire sub-pipelines (``client.execute``,
``client.order_wait``, ``validate.block``) are excluded: they would
swallow the path with a single uninformative segment.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.collector import MetricsCollector
    from repro.obs.tracer import Span, Tracer

#: Spans that enclose whole sub-pipelines; never path segments themselves.
WRAPPER_SPANS = frozenset({"client.execute", "client.order_wait",
                           "validate.block"})

#: Label for un-instrumented intervals on the path (network, queueing).
TRANSIT = "(transit)"

#: Phase charged for the tail gap between the anchor peer's commit and
#: the client learning of it (the notify hop is validate-phase latency
#: under the paper's Definition 4.2 decomposition).
_TAIL_PHASE = "validate"


@dataclasses.dataclass
class PathSegment:
    """One interval of a transaction's critical path."""

    name: str            # span name, or ``(transit)`` for gaps
    phase: str           # execute | order | validate | statedb
    node: str            # "" for transit segments
    start: float
    end: float
    wait: float = 0.0    # seconds of the segment spent queued

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def service(self) -> float:
        return max(self.duration - self.wait, 0.0)


@dataclasses.dataclass
class TxCriticalPath:
    """The reconstructed critical path of one committed transaction."""

    tx_id: str
    submitted: float
    committed: float
    anchor: str
    #: Segments in reverse time order (commit backwards to submission).
    segments: list[PathSegment]

    @property
    def e2e(self) -> float:
        return self.committed - self.submitted

    @property
    def coverage(self) -> float:
        """Fraction of e2e covered by recorded spans (rest is transit)."""
        if self.e2e <= 0:
            return 1.0
        covered = sum(s.duration for s in self.segments
                      if s.name != TRANSIT)
        return covered / self.e2e


class _SpanIndex:
    """One candidate group: spans sorted by end, bisectable."""

    __slots__ = ("spans", "ends")

    def __init__(self, spans: list["Span"]) -> None:
        self.spans = sorted(spans, key=lambda s: (s.end, s.start))
        self.ends = [s.end for s in self.spans]

    def latest_before(self, when: float) -> "Span | None":
        """The span with the greatest end <= when whose start < when."""
        index = bisect.bisect_right(self.ends, when) - 1
        while index >= 0:
            span = self.spans[index]
            if span.start < when:
                return span
            index -= 1
        return None


def _phase_of(span: "Span") -> str:
    if span.category:
        return span.category
    return span.name.split(".", 1)[0]


def _anchor_map(tracer: "Tracer") -> dict[str, str]:
    """tx_id -> anchor peer, from client.order_wait span annotations."""
    anchors: dict[str, str] = {}
    for span in tracer.spans:
        if span.name == "client.order_wait" and span.tx_id and span.args:
            anchor = span.args.get("anchor")
            if anchor:
                anchors[span.tx_id] = anchor  # last attempt wins
    return anchors


def extract_critical_paths(
        tracer: "Tracer", metrics: "MetricsCollector",
        limit: int | None = None) -> list[TxCriticalPath]:
    """Reconstruct the critical path of every committed transaction.

    Transactions are processed in commit order; ``limit`` keeps only the
    first N (for spot-checking timelines without the full sweep).
    """
    anchors = _anchor_map(tracer)

    own: dict[str, list[Span]] = {}
    shared_order: list[Span] = []
    shared_validate: dict[str, list[Span]] = {}
    for span in tracer.spans:
        if (span.start is None or span.end is None
                or span.name in WRAPPER_SPANS):
            continue
        phase = _phase_of(span)
        if span.tx_id:
            own.setdefault(span.tx_id, []).append(span)
        elif phase == "order":
            shared_order.append(span)
        elif phase in ("validate", "statedb"):
            shared_validate.setdefault(span.node, []).append(span)

    order_index = _SpanIndex(shared_order)
    validate_indexes = {node: _SpanIndex(spans)
                        for node, spans in shared_validate.items()}
    empty = _SpanIndex([])

    committed = sorted(
        (record for record in metrics.records.values()
         if record.committed is not None and record.submitted is not None),
        key=lambda record: (record.committed, record.tx_id))
    if limit is not None:
        committed = committed[:limit]

    paths: list[TxCriticalPath] = []
    for record in committed:
        anchor = anchors.get(record.tx_id, "")
        groups = [
            _SpanIndex(own.get(record.tx_id, [])),
            order_index,
            validate_indexes.get(anchor, empty),
        ]
        paths.append(_walk(record.tx_id, record.submitted, record.committed,
                           anchor, groups))
    return paths


def _walk(tx_id: str, submitted: float, committed: float, anchor: str,
          groups: list[_SpanIndex]) -> TxCriticalPath:
    segments: list[PathSegment] = []
    current = committed
    downstream_phase = _TAIL_PHASE
    while current > submitted:
        best: Span | None = None
        for group in groups:
            span = group.latest_before(current)
            if span is not None and (best is None or span.end > best.end):
                best = span
        if best is None or best.end <= submitted:
            # Nothing recorded earlier: the head gap back to submission.
            segments.append(PathSegment(
                name=TRANSIT, phase=downstream_phase, node="",
                start=submitted, end=current))
            break
        if best.end < current:
            # Un-instrumented interval between the span and the position
            # we walked back from: network / delivery / queueing time on
            # the way to the downstream consumer.
            segments.append(PathSegment(
                name=TRANSIT, phase=downstream_phase, node="",
                start=best.end, end=current))
        start = max(best.start, submitted)
        duration = best.end - start
        wait = min(best.wait or 0.0, duration)
        segments.append(PathSegment(
            name=best.name, phase=_phase_of(best), node=best.node,
            start=start, end=best.end, wait=wait))
        downstream_phase = _phase_of(best)
        current = start
    return TxCriticalPath(tx_id=tx_id, submitted=submitted,
                          committed=committed, anchor=anchor,
                          segments=segments)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

@dataclasses.dataclass
class AttributionEntry:
    """Aggregated critical-path seconds for one phase or span kind."""

    seconds: float = 0.0
    wait: float = 0.0
    count: int = 0

    @property
    def service(self) -> float:
        return max(self.seconds - self.wait, 0.0)


@dataclasses.dataclass
class CriticalPathSummary:
    """Where the end-to-end seconds of all committed transactions went."""

    transactions: int
    total_e2e: float
    mean_e2e: float
    mean_coverage: float
    phases: dict[str, AttributionEntry]
    segments: dict[str, AttributionEntry]

    @property
    def dominant_phase(self) -> str:
        if not self.phases:
            return ""
        return max(self.phases.items(), key=lambda kv: kv[1].seconds)[0]

    def phase_share(self, phase: str) -> float:
        if self.total_e2e <= 0:
            return 0.0
        entry = self.phases.get(phase)
        return entry.seconds / self.total_e2e if entry else 0.0

    def as_dict(self) -> dict[str, typing.Any]:
        """JSON-ready form; key-sorted by the caller when hashed."""
        def table(entries: dict[str, AttributionEntry]
                  ) -> dict[str, dict[str, float]]:
            return {
                name: {
                    "seconds": round(entry.seconds, 9),
                    "wait_s": round(entry.wait, 9),
                    "service_s": round(entry.service, 9),
                    "count": entry.count,
                    "share": (round(entry.seconds / self.total_e2e, 6)
                              if self.total_e2e > 0 else 0.0),
                }
                for name, entry in sorted(entries.items())
            }

        return {
            "transactions": self.transactions,
            "total_e2e_s": round(self.total_e2e, 9),
            "mean_e2e_s": round(self.mean_e2e, 9),
            "mean_coverage": round(self.mean_coverage, 6),
            "dominant_phase": self.dominant_phase,
            "phases": table(self.phases),
            "segments": table(self.segments),
        }


def summarize_critical_paths(
        paths: list[TxCriticalPath]) -> CriticalPathSummary:
    """Aggregate per-phase / per-segment critical-path attribution."""
    phases: dict[str, AttributionEntry] = {}
    segments: dict[str, AttributionEntry] = {}
    total_e2e = 0.0
    coverage = 0.0
    for path in paths:
        total_e2e += path.e2e
        coverage += path.coverage
        for segment in path.segments:
            for table, key in ((phases, segment.phase),
                               (segments, segment.name)):
                entry = table.get(key)
                if entry is None:
                    entry = table[key] = AttributionEntry()
                entry.seconds += segment.duration
                entry.wait += segment.wait
                entry.count += 1
    n = len(paths)
    return CriticalPathSummary(
        transactions=n,
        total_e2e=total_e2e,
        mean_e2e=total_e2e / n if n else 0.0,
        mean_coverage=coverage / n if n else 0.0,
        phases=phases,
        segments=segments,
    )


def tx_timeline(tracer: "Tracer", tx_id: str) -> list["Span"]:
    """All recorded spans of one transaction, in start order.

    The raw causal timeline (pre critical-path reduction): every hop the
    transaction touched, with per-span ``wait`` and parent links.
    """
    spans = [span for span in tracer.spans
             if span.tx_id == tx_id and span.start is not None]
    spans.sort(key=lambda s: (s.start, s.end if s.end is not None else s.start))
    return spans


def render_summary(summary: CriticalPathSummary) -> str:
    """Human-readable attribution table for CLI output."""
    lines = [
        f"critical path over {summary.transactions} committed txs  "
        f"(mean e2e {summary.mean_e2e * 1000:.1f} ms, "
        f"span coverage {summary.mean_coverage * 100:.1f}%)",
        f"dominant phase: {summary.dominant_phase}",
        "",
        f"{'phase':<12} {'share':>7} {'seconds':>10} {'wait':>10} "
        f"{'service':>10}",
    ]
    for name, entry in sorted(summary.phases.items(),
                              key=lambda kv: -kv[1].seconds):
        lines.append(
            f"{name:<12} {summary.phase_share(name) * 100:>6.1f}% "
            f"{entry.seconds:>10.3f} {entry.wait:>10.3f} "
            f"{entry.service:>10.3f}")
    lines.append("")
    lines.append(f"{'segment':<22} {'share':>7} {'seconds':>10} "
                 f"{'count':>8} {'mean ms':>9}")
    for name, entry in sorted(summary.segments.items(),
                              key=lambda kv: -kv[1].seconds):
        share = (entry.seconds / summary.total_e2e * 100
                 if summary.total_e2e > 0 else 0.0)
        mean_ms = (entry.seconds / entry.count * 1000 if entry.count else 0.0)
        lines.append(f"{name:<22} {share:>6.1f}% {entry.seconds:>10.3f} "
                     f"{entry.count:>8d} {mean_ms:>9.3f}")
    return "\n".join(lines)
