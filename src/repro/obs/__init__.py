"""Simulation-wide observability: span tracing, resource sampling,
and automated bottleneck attribution.

The subsystem has three cooperating parts:

- :mod:`repro.obs.tracer` — hierarchical span tracing on the simulated
  clock, exportable as Chrome/Perfetto ``trace_event`` JSON;
- :mod:`repro.obs.sampler` — named resource monitors recording
  time-weighted utilization, queue depth, and wait-time distributions,
  checkpointed by a sampler process;
- :mod:`repro.obs.report` — :func:`bottleneck_report`, ranking resources
  by utilization and attributing the saturated phase directly from
  measurements (the paper's §V analysis as a feature).

Tracing is opt-in and default-off: ``NetworkContext.tracer`` is the no-op
:data:`NULL_TRACER` unless an :class:`Observability` bundle installs a
real one, so unobserved benchmark runs behave identically.
"""

from repro.obs.observe import Observability
from repro.obs.report import (
    SATURATION_THRESHOLD,
    BottleneckReport,
    ResourceUsage,
    SpanStats,
    bottleneck_report,
    span_statistics,
)
from repro.obs.sampler import (
    Checkpoint,
    ResourceMonitor,
    UtilizationSampler,
    watch_resource,
    watch_store,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "SATURATION_THRESHOLD",
    "BottleneckReport",
    "Checkpoint",
    "NullTracer",
    "Observability",
    "ResourceMonitor",
    "ResourceUsage",
    "Span",
    "SpanStats",
    "Tracer",
    "UtilizationSampler",
    "bottleneck_report",
    "span_statistics",
    "watch_resource",
    "watch_store",
]
