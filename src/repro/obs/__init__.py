"""Simulation-wide observability: span tracing, resource sampling,
and automated bottleneck attribution.

The subsystem has three cooperating parts:

- :mod:`repro.obs.tracer` — hierarchical span tracing on the simulated
  clock, exportable as Chrome/Perfetto ``trace_event`` JSON;
- :mod:`repro.obs.sampler` — named resource monitors recording
  time-weighted utilization, queue depth, and wait-time distributions,
  checkpointed by a sampler process;
- :mod:`repro.obs.report` — :func:`bottleneck_report`, ranking resources
  by utilization and attributing the saturated phase directly from
  measurements (the paper's §V analysis as a feature);
- :mod:`repro.obs.critical_path` — per-transaction causal critical-path
  extraction and aggregated per-phase latency attribution;
- :mod:`repro.obs.queueing` — the queueing observatory: per-resource
  wait/service distributions with a Little's-law consistency check;
- :mod:`repro.obs.regression` — the perf-regression gate behind
  ``repro obs-diff``.

Tracing is opt-in and default-off: ``NetworkContext.tracer`` is the no-op
:data:`NULL_TRACER` unless an :class:`Observability` bundle installs a
real one, so unobserved benchmark runs behave identically.
"""

from repro.obs.critical_path import (
    CriticalPathSummary,
    PathSegment,
    TxCriticalPath,
    extract_critical_paths,
    summarize_critical_paths,
    tx_timeline,
)
from repro.obs.observe import Observability
from repro.obs.queueing import (
    QueueingReport,
    ResourceQueueStats,
    queueing_report,
    resource_stats,
)
from repro.obs.regression import (
    DiffResult,
    MetricDelta,
    compare_measurements,
    diff_files,
)
from repro.obs.report import (
    SATURATION_THRESHOLD,
    BottleneckReport,
    ResourceUsage,
    SpanStats,
    bottleneck_report,
    span_statistics,
)
from repro.obs.sampler import (
    Checkpoint,
    ResourceMonitor,
    UtilizationSampler,
    watch_resource,
    watch_store,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "SATURATION_THRESHOLD",
    "BottleneckReport",
    "Checkpoint",
    "CriticalPathSummary",
    "DiffResult",
    "MetricDelta",
    "NullTracer",
    "Observability",
    "PathSegment",
    "QueueingReport",
    "ResourceMonitor",
    "ResourceQueueStats",
    "ResourceUsage",
    "Span",
    "SpanStats",
    "Tracer",
    "TxCriticalPath",
    "UtilizationSampler",
    "bottleneck_report",
    "compare_measurements",
    "diff_files",
    "extract_critical_paths",
    "queueing_report",
    "resource_stats",
    "span_statistics",
    "summarize_critical_paths",
    "tx_timeline",
    "watch_resource",
    "watch_store",
]
