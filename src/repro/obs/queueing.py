"""The queueing observatory: per-resource wait/service telemetry.

Turns the :class:`~repro.obs.sampler.ResourceMonitor`s attached to a run
into first-class queueing statistics: utilization, time-weighted mean
queue depth, arrival/completion throughput, wait-time and service-time
distributions, and a **Little's-law consistency check** per resource.

The check exploits that the monitors keep *two independent* measurements
of the same quantity.  Time-average occupancy::

    L = (busy_integral + queue_integral) / T      (area method)

must equal arrival rate times mean sojourn (Little's law)::

    lambda * W = (sum(waits) + sum(services)) / T  (per-request method)

because both numerators are the total request-seconds spent in the
system.  They are computed from different code paths (kernel state
callbacks vs per-request grant/release timestamps), so agreement within
tolerance is a strong internal-consistency validator for the whole
instrumentation layer — and a standing cross-check for the analytic
queueing model (ROADMAP item 4) fitted from these same distributions.
Known, reported, sources of residual disagreement: requests still in
the system at the window edge (their occupancy is in the integrals but
their sojourn has not been recorded yet) and queued requests cancelled
before service (timeout races; counted in ``cancels``).
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.sampler import ResourceMonitor

#: Default relative tolerance for the Little's-law check.
LITTLE_TOLERANCE = 0.05

#: Absolute occupancy floor below which the check passes trivially
#: (idle resources: both sides indistinguishable from zero).
_OCCUPANCY_FLOOR = 1e-9


@dataclasses.dataclass
class ResourceQueueStats:
    """Queueing statistics for one monitored resource over a window."""

    name: str
    kind: str                 # "resource" (server pool) or "queue" (store)
    phase: str
    capacity: int
    window: float             # seconds observed
    utilization: float
    mean_queue: float
    max_queue: int
    arrivals: int             # slots granted
    completions: int          # slots released (service recorded)
    cancels: int              # queued requests withdrawn before grant
    mean_wait: float
    p95_wait: float
    mean_service: float
    p95_service: float
    occupancy_l: float        # L: time-average requests in system (area)
    lambda_w: float           # lambda*W: per-request accounting
    little_error: float | None  # relative |L - lambda*W|; None: no check
    little_ok: bool

    @property
    def throughput(self) -> float:
        return self.completions / self.window if self.window > 0 else 0.0

    def as_dict(self) -> dict[str, typing.Any]:
        data = dataclasses.asdict(self)
        data["throughput"] = self.throughput
        return data


@dataclasses.dataclass
class QueueingReport:
    """All monitored resources' queueing statistics for one run."""

    resources: list[ResourceQueueStats]
    tolerance: float = LITTLE_TOLERANCE

    @property
    def violations(self) -> list[ResourceQueueStats]:
        return [stats for stats in self.resources if not stats.little_ok]

    @property
    def little_ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "tolerance": self.tolerance,
            "little_ok": self.little_ok,
            "resources": {stats.name: stats.as_dict()
                          for stats in sorted(self.resources,
                                              key=lambda s: s.name)},
        }


def resource_stats(monitor: "ResourceMonitor",
                   start: float | None = None,
                   end: float | None = None,
                   tolerance: float = LITTLE_TOLERANCE
                   ) -> ResourceQueueStats:
    """Queueing statistics for one monitor over ``[start, end)``.

    The Little's-law check compares lifetime accumulations, so it is
    only performed for the full-lifetime window (``start`` and ``end``
    both ``None``); windowed calls report occupancy but skip the check.
    Store monitors (kind ``queue``) have no grant/release telemetry and
    skip it too.
    """
    elapsed, busy, queue, _t0 = monitor._window(start, end)
    full_window = start is None and end is None
    utilization = monitor.utilization(start, end)
    mean_queue = queue / elapsed if elapsed > 0 else 0.0

    occupancy = ((busy + queue) / elapsed) if elapsed > 0 else 0.0
    lambda_w = ((monitor.waits.total + monitor.services.total) / elapsed
                if elapsed > 0 and full_window else 0.0)

    little_error: float | None = None
    little_ok = True
    if full_window and monitor.kind != "queue" and elapsed > 0:
        denominator = max(occupancy, lambda_w, _OCCUPANCY_FLOOR)
        if max(occupancy, lambda_w) <= _OCCUPANCY_FLOOR:
            little_error = 0.0
        else:
            little_error = abs(occupancy - lambda_w) / denominator
        little_ok = little_error <= tolerance

    waits = monitor.waits
    services = monitor.services
    return ResourceQueueStats(
        name=monitor.name,
        kind=monitor.kind,
        phase=monitor.phase,
        capacity=monitor.capacity,
        window=elapsed,
        utilization=utilization,
        mean_queue=mean_queue,
        max_queue=monitor.max_queue,
        arrivals=monitor.grants,
        completions=services.count,
        cancels=monitor.cancels,
        mean_wait=waits.mean,
        p95_wait=waits.percentile(95),
        mean_service=services.mean,
        p95_service=services.percentile(95),
        occupancy_l=occupancy,
        lambda_w=lambda_w,
        little_error=little_error,
        little_ok=little_ok,
    )


def queueing_report(monitors: typing.Mapping[str, "ResourceMonitor"],
                    start: float | None = None,
                    end: float | None = None,
                    tolerance: float = LITTLE_TOLERANCE) -> QueueingReport:
    """Build the observatory report across all monitors."""
    stats = [resource_stats(monitor, start, end, tolerance)
             for monitor in monitors.values()]
    stats.sort(key=lambda s: (-s.utilization, s.name))
    return QueueingReport(resources=stats, tolerance=tolerance)


def render_queueing_report(report: QueueingReport,
                           top: int | None = 12) -> str:
    """Human-readable table for CLI output (busiest resources first)."""
    rows = report.resources if top is None else report.resources[:top]
    lines = [
        f"{'resource':<26} {'util':>6} {'meanQ':>7} {'thr/s':>8} "
        f"{'wait ms':>8} {'svc ms':>8} {'L':>8} {'lam*W':>8} {'Little':>7}",
    ]
    for stats in rows:
        if stats.little_error is None:
            check = "-"
        else:
            check = ("ok" if stats.little_ok
                     else f"{stats.little_error * 100:.1f}%!")
        lines.append(
            f"{stats.name:<26} {stats.utilization * 100:>5.1f}% "
            f"{stats.mean_queue:>7.3f} {stats.throughput:>8.1f} "
            f"{stats.mean_wait * 1000:>8.3f} {stats.mean_service * 1000:>8.3f} "
            f"{stats.occupancy_l:>8.4f} {stats.lambda_w:>8.4f} {check:>7}")
    hidden = len(report.resources) - len(rows)
    if hidden > 0:
        lines.append(f"... {hidden} more resources (all shown in JSON)")
    if report.violations:
        names = ", ".join(s.name for s in report.violations)
        lines.append(f"LITTLE'S-LAW VIOLATIONS: {names}")
    else:
        lines.append("Little's-law check: all monitored resources "
                     f"consistent within {report.tolerance * 100:.0f}%")
    return "\n".join(lines)
