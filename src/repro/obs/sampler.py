"""Resource-utilization instrumentation: monitors and the sampler process.

A :class:`ResourceMonitor` attaches to one named kernel primitive (a
:class:`~repro.sim.resources.Resource` pool or a
:class:`~repro.sim.resources.Store` queue) and accumulates *exact*
time-weighted integrals of busy servers and queue depth, plus a streaming
histogram of per-request queue-wait times.  The kernel calls back into the
monitor on every state change; when no monitor is attached the cost is a
single ``is None`` test, so unobserved runs are unchanged.

A :class:`UtilizationSampler` is a simulation process that periodically
checkpoints every monitor.  Checkpoints carry the running integrals, so
utilization and mean queue depth over any ``[start, end)`` window can be
recovered exactly at the enclosing checkpoints (and linearly interpolated
between them) — the basis of windowed bottleneck attribution.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.metrics.stats import StreamingHistogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import ProcessGenerator, Simulation
    from repro.sim.resources import Resource, Store


@dataclasses.dataclass
class Checkpoint:
    """One sampler snapshot of a monitor's running integrals.

    The count/total fields (grants, completions, wait and service sums)
    were appended for the queueing observatory; they default to zero so
    hand-built checkpoints in older tests keep constructing.
    """

    time: float
    busy_integral: float
    queue_integral: float
    busy: int
    queue: int
    grants: int = 0
    completions: int = 0
    wait_total: float = 0.0
    service_total: float = 0.0


class ResourceMonitor:
    """Time-weighted usage accounting for one named resource or queue.

    ``capacity`` is the number of servers for a :class:`Resource`; pass 0
    for pure queues (a :class:`Store`), which report depth but no
    utilization.
    """

    def __init__(self, sim: "Simulation", name: str, capacity: int,
                 kind: str = "resource", phase: str = "") -> None:
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.kind = kind
        self.phase = phase
        self.waits = StreamingHistogram()
        #: Per-request service times (grant -> release), fed by the kernel.
        self.services = StreamingHistogram()
        self.grants = 0
        #: Queued requests withdrawn before being granted (timeout races);
        #: their queueing time is in the queue integral but never reaches
        #: the wait histogram — the Little's-law check reports them.
        self.cancels = 0
        #: Span tracer the monitor reports queue waits to (see
        #: :meth:`note_wait`); wired by the observability layer.
        self.tracer: typing.Any = None
        self.max_queue = 0
        self._busy = 0
        self._queue = 0
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_time = sim.now
        self._attached_at = sim.now
        self.checkpoints: list[Checkpoint] = []
        self._checkpoint_times: list[float] = []

    # ------------------------------------------------------------------
    # Kernel callbacks
    # ------------------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed > 0:
            self._busy_integral += self._busy * elapsed
            self._queue_integral += self._queue * elapsed
            self._last_time = now

    def on_state(self, busy: int, queue: int) -> None:
        """Called by the kernel whenever occupancy or queue depth changes."""
        self._advance()
        self._busy = busy
        self._queue = queue
        if queue > self.max_queue:
            self.max_queue = queue

    def on_grant(self, wait: float) -> None:
        """Called when a queued request is granted after ``wait`` seconds."""
        self.grants += 1
        self.waits.add(wait)

    def on_release(self, service: float) -> None:
        """Called when a granted slot is returned after ``service`` secs."""
        self.services.add(service)

    def on_cancel(self) -> None:
        """Called when a queued request is withdrawn before its grant."""
        self.cancels += 1

    def note_wait(self, wait: float) -> None:
        """Report a measured queue wait to the attached tracer (if any).

        The tracer attaches it to the innermost open span of the active
        process, which is the caller that just waited — this is how spans
        get their wait populated automatically on monitored resources.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.attach_wait(wait)

    # ------------------------------------------------------------------
    # Sampling and windowed statistics
    # ------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the running integrals at the current simulated time."""
        self._advance()
        point = Checkpoint(time=self.sim.now,
                           busy_integral=self._busy_integral,
                           queue_integral=self._queue_integral,
                           busy=self._busy, queue=self._queue,
                           grants=self.grants,
                           completions=self.services.count,
                           wait_total=self.waits.total,
                           service_total=self.services.total)
        self.checkpoints.append(point)
        self._checkpoint_times.append(point.time)
        return point

    def _integrals_at(self, when: float) -> tuple[float, float]:
        """Busy/queue integrals at ``when``.

        Exact at every checkpoint and at the live accounting point
        (``_last_time``, kept current by :meth:`_advance`); linearly
        interpolated in between, extrapolated with the current state
        beyond.
        """
        if when <= self._attached_at:
            return 0.0, 0.0
        if when >= self._last_time:
            extra = when - self._last_time
            return (self._busy_integral + self._busy * extra,
                    self._queue_integral + self._queue * extra)
        points = self.checkpoints
        if not points or when <= points[0].time:
            # Between attach and the first known point: scale linearly.
            first_time = points[0].time if points else self._last_time
            first_busy = (points[0].busy_integral if points
                          else self._busy_integral)
            first_queue = (points[0].queue_integral if points
                           else self._queue_integral)
            fraction = ((when - self._attached_at)
                        / max(first_time - self._attached_at, 1e-12))
            return first_busy * fraction, first_queue * fraction
        if when >= points[-1].time:
            # Between the last checkpoint and the live point.
            last = points[-1]
            span = max(self._last_time - last.time, 1e-12)
            fraction = (when - last.time) / span
            busy = (last.busy_integral
                    + (self._busy_integral - last.busy_integral) * fraction)
            queue = (last.queue_integral
                     + (self._queue_integral - last.queue_integral)
                     * fraction)
            return busy, queue
        index = bisect.bisect_right(self._checkpoint_times, when)
        low, high = points[index - 1], points[index]
        span = max(high.time - low.time, 1e-12)
        fraction = (when - low.time) / span
        busy = (low.busy_integral
                + (high.busy_integral - low.busy_integral) * fraction)
        queue = (low.queue_integral
                 + (high.queue_integral - low.queue_integral) * fraction)
        return busy, queue

    def _window(self, start: float | None,
                end: float | None) -> tuple[float, float, float, float]:
        """(elapsed, busy integral, queue integral, start) over a window."""
        self._advance()
        t0 = self._attached_at if start is None else start
        t1 = self._last_time if end is None else end
        if t1 <= t0:
            return 0.0, 0.0, 0.0, t0
        busy0, queue0 = self._integrals_at(t0)
        busy1, queue1 = self._integrals_at(t1)
        return t1 - t0, busy1 - busy0, queue1 - queue0, t0

    def utilization(self, start: float | None = None,
                    end: float | None = None) -> float:
        """Fraction of server capacity busy over ``[start, end)``.

        Defaults to the monitor's whole lifetime.  Queues (capacity 0)
        report 0.0.
        """
        elapsed, busy, _queue, _t0 = self._window(start, end)
        if elapsed <= 0 or self.capacity <= 0:
            return 0.0
        return busy / (self.capacity * elapsed)

    def mean_queue(self, start: float | None = None,
                   end: float | None = None) -> float:
        """Time-weighted mean queue depth over ``[start, end)``."""
        elapsed, _busy, queue, _t0 = self._window(start, end)
        if elapsed <= 0:
            return 0.0
        return queue / elapsed

    def busy_series(self) -> list[tuple[float, float]]:
        """(time, mean busy servers) per checkpoint interval, for counters."""
        series: list[tuple[float, float]] = []
        previous: Checkpoint | None = None
        for point in self.checkpoints:
            if previous is not None:
                elapsed = point.time - previous.time
                if elapsed > 0:
                    busy = ((point.busy_integral - previous.busy_integral)
                            / elapsed)
                    series.append((point.time, busy))
            previous = point
        return series

    def queue_series(self) -> list[tuple[float, float]]:
        """(time, mean queue depth) per checkpoint interval."""
        series: list[tuple[float, float]] = []
        previous: Checkpoint | None = None
        for point in self.checkpoints:
            if previous is not None:
                elapsed = point.time - previous.time
                if elapsed > 0:
                    depth = ((point.queue_integral - previous.queue_integral)
                             / elapsed)
                    series.append((point.time, depth))
            previous = point
        return series

    def __repr__(self) -> str:
        return (f"<ResourceMonitor {self.name} kind={self.kind} "
                f"capacity={self.capacity} util={self.utilization():.3f}>")


def watch_resource(resource: "Resource", name: str | None = None,
                   kind: str = "resource",
                   phase: str = "") -> ResourceMonitor:
    """Attach a monitor to ``resource`` (replacing any existing one)."""
    label = name or resource.name or f"resource@{id(resource):#x}"
    monitor = ResourceMonitor(resource.sim, label, resource.capacity,
                              kind=kind, phase=phase)
    resource.monitor = monitor
    monitor.on_state(resource.count, resource.queue_length)
    return monitor


def watch_store(store: "Store", name: str | None = None,
                phase: str = "") -> ResourceMonitor:
    """Attach a queue-depth monitor to ``store``."""
    label = name or store.name or f"store@{id(store):#x}"
    monitor = ResourceMonitor(store.sim, label, capacity=0, kind="queue",
                              phase=phase)
    store.monitor = monitor
    monitor.on_state(store.waiting_getters, len(store))
    return monitor


class UtilizationSampler:
    """A simulation process checkpointing every monitor on an interval."""

    def __init__(self, sim: "Simulation",
                 monitors: typing.Mapping[str, ResourceMonitor],
                 interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, "
                             f"got {interval}")
        self.sim = sim
        self.monitors = monitors
        self.interval = interval
        self.samples_taken = 0
        self._process = None

    def start(self, until: float | None = None) -> None:
        """Begin sampling; stops at simulated time ``until`` if given."""
        if self._process is None or not self._process.is_alive:
            self._process = self.sim.process(self._run(until))

    def _run(self, until: float | None) -> "ProcessGenerator":
        while until is None or self.sim.now < until:
            yield self.sim.timeout(self.interval)
            self.sample()

    def sample(self) -> None:
        """Checkpoint every monitor once at the current time."""
        for monitor in self.monitors.values():
            monitor.checkpoint()
        self.samples_taken += 1
