"""Hierarchical span tracing on the simulated clock.

A :class:`Tracer` records *spans* — named intervals of simulated time tied
to a node and (optionally) a transaction — plus instantaneous events and
counter series.  Spans are opened with a context manager::

    with tracer.span("endorse", category="execute", node=peer.name,
                     tx_id=proposal.tx_id) as span:
        ...            # simulated work; `yield` freely inside
        span.set_wait(queue_wait_seconds)

Because the simulation is single-threaded, a ``with`` block around
generator code measures exactly the simulated interval between entering
and leaving the block, even when the process yields in between.  Spans
nest per simulation process (the tracer keeps one open-span stack per
:class:`~repro.sim.core.Process`), so a span opened inside another span of
the same process records it as its parent.

Tracing is opt-in and default-off: every node reaches its tracer through
``context.tracer``, which is the shared :data:`NULL_TRACER` unless an
observability layer installed a real one.  The null tracer allocates
nothing and returns a shared no-op span, so instrumentation costs a single
attribute lookup on the hot path and *zero* simulated time either way.

The recorded trace exports to Chrome ``trace_event`` JSON (the format read
by ``chrome://tracing`` and https://ui.perfetto.dev), with one process row
per simulated node and overlapping spans spread across per-node lanes.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import types

    from repro.sim.core import Simulation


class Span:
    """One named interval of simulated time."""

    __slots__ = ("_tracer", "name", "category", "node", "tx_id", "start",
                 "end", "wait", "args", "parent")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 node: str, tx_id: str,
                 args: dict[str, typing.Any] | None) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.node = node
        self.tx_id = tx_id
        self.start: float | None = None
        self.end: float | None = None
        #: Seconds of the span spent waiting in a queue (set by the caller).
        self.wait: float | None = None
        self.args = args
        self.parent: "Span | None" = None

    @property
    def duration(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def annotate(self, **kwargs: typing.Any) -> "Span":
        """Attach key/value details, shown in the trace viewer."""
        if self.args is None:
            self.args = {}
        self.args.update(kwargs)
        return self

    def set_wait(self, seconds: float) -> "Span":
        """Record how long this span waited in a queue before service."""
        self.wait = seconds
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: "types.TracebackType | None") -> bool:
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:
        return (f"<Span {self.name} node={self.node} start={self.start} "
                f"end={self.end}>")


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    start = None
    end = None
    wait = None
    duration = None

    def annotate(self, **kwargs: typing.Any) -> "_NullSpan":
        return self

    def set_wait(self, seconds: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: "types.TracebackType | None") -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Default-off tracer: every operation is a no-op.

    Truth-testing is False so call sites can guard expensive argument
    construction with ``if tracer: ...``.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, category: str = "", node: str = "",
             tx_id: str = "", **args: typing.Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, category: str = "", node: str = "",
                **args: typing.Any) -> None:
        return None

    def counter(self, name: str, node: str = "",
                **values: float) -> None:
        return None

    def attach_wait(self, seconds: float) -> None:
        return None

    def block_cut(self, channel: str, number: int,
                  tx_ids: list[str]) -> None:
        return None

    def record_complete(self, name: str, category: str = "", node: str = "",
                        tx_id: str = "", start: float = 0.0, end: float = 0.0,
                        **args: typing.Any) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans, instants, and counters against the simulated clock."""

    enabled = True

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.spans: list[Span] = []
        self.instants: list[
            tuple[float, str, str, str, dict[str, typing.Any] | None]] = []
        self.counters: list[tuple[float, str, str, dict[str, float]]] = []
        #: Block composition: (channel, number) -> tx_ids, recorded by the
        #: ordering service when it cuts a block.  Critical-path extraction
        #: uses it to tie a transaction to its block's ordering spans.
        self.blocks: dict[tuple[str, int], list[str]] = {}
        # Open-span stack per simulation process (id -> stack); keyed by id
        # because Process objects are not hashable by value and stacks must
        # not keep dead processes alive once their spans close.
        self._stacks: dict[int, list[Span]] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, category: str = "", node: str = "",
             tx_id: str = "", **args: typing.Any) -> Span:
        """Create a span; record it by using it as a context manager."""
        return Span(self, name, category, node, tx_id, args or None)

    def instant(self, name: str, category: str = "", node: str = "",
                **args: typing.Any) -> None:
        """Record an instantaneous event at the current simulated time."""
        self.instants.append(
            (self.sim.now, name, category, node, args or None))

    def counter(self, name: str, node: str = "",
                **values: float) -> None:
        """Record a named counter sample (rendered as a chart track)."""
        self.counters.append((self.sim.now, name, node, dict(values)))

    def attach_wait(self, seconds: float) -> None:
        """Add queue-wait seconds to the active process's innermost span.

        Called by :meth:`~repro.obs.sampler.ResourceMonitor.note_wait` when
        a monitored resource grants a contended slot: the waiter resumes,
        and whatever span it has open absorbs the measured wait.  Waits
        accumulate, so a span covering several acquisitions reports their
        sum.  No open span -> the wait is only in the monitor's histogram.
        """
        stack = self._stacks.get(self._stack_key())
        if stack:
            span = stack[-1]
            span.wait = (span.wait or 0.0) + seconds

    def block_cut(self, channel: str, number: int,
                  tx_ids: list[str]) -> None:
        """Record which transactions a freshly cut block carries.

        Idempotent per (channel, number): with multi-OSN orderers every
        node reports the same cut, and only the first wins.
        """
        self.blocks.setdefault((channel, number), list(tx_ids))

    def record_complete(self, name: str, category: str = "", node: str = "",
                        tx_id: str = "", start: float = 0.0, end: float = 0.0,
                        **args: typing.Any) -> None:
        """Record an already-finished span without touching the stacks.

        For intervals reconstructed after the fact (fault windows, external
        timelines) where no process held the span open.
        """
        span = Span(self, name, category, node, tx_id, args or None)
        span.start = start
        span.end = end
        self.spans.append(span)

    def _stack_key(self) -> int:
        process = self.sim.active_process
        return id(process) if process is not None else 0

    def _open(self, span: Span) -> None:
        span.start = self.sim.now
        stack = self._stacks.setdefault(self._stack_key(), [])
        if stack:
            span.parent = stack[-1]
        stack.append(span)
        self.spans.append(span)

    def _close(self, span: Span) -> None:
        span.end = self.sim.now
        key = self._stack_key()
        stack = self._stacks.get(key)
        if stack and span in stack:
            # Pop through (tolerates a child left open by an interrupt).
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if not stack and key in self._stacks:
            del self._stacks[key]

    # ------------------------------------------------------------------
    # Export: Chrome trace_event JSON
    # ------------------------------------------------------------------

    def to_chrome_trace(
            self, extra_events: list[dict[str, typing.Any]] | None = None,
    ) -> dict[str, typing.Any]:
        """The trace as a Chrome ``trace_event`` object.

        One *process* per simulated node; concurrent spans of one node are
        spread greedily over numbered lanes (threads) so nothing overlaps
        in the viewer.  Times are microseconds of simulated time.
        """
        events: list[dict[str, typing.Any]] = []
        pids: dict[str, int] = {}

        def pid_for(node: str) -> int:
            label = node or "(global)"
            if label not in pids:
                pids[label] = len(pids) + 1
            return pids[label]

        # Spans, grouped per node for lane assignment.
        by_node: dict[str, list[Span]] = {}
        for span in self.spans:
            if span.start is None:
                continue
            by_node.setdefault(span.node, []).append(span)
        for node, spans in by_node.items():
            pid = pid_for(node)
            lanes: list[float] = []  # lane -> end time of its last span
            for span in sorted(spans, key=lambda s: (s.start, s.name)):
                end = span.end if span.end is not None else span.start
                for tid, lane_end in enumerate(lanes):
                    if lane_end <= span.start:
                        lanes[tid] = end
                        break
                else:
                    tid = len(lanes)
                    lanes.append(end)
                args: dict[str, typing.Any] = {}
                if span.tx_id:
                    args["tx_id"] = span.tx_id
                if span.wait is not None:
                    args["queue_wait_s"] = span.wait
                if span.parent is not None:
                    args["parent"] = span.parent.name
                if span.args:
                    args.update(span.args)
                events.append({
                    "name": span.name,
                    "cat": span.category or "span",
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "pid": pid,
                    "tid": tid + 1,
                    "args": args,
                })
        for when, name, category, node, args in self.instants:
            events.append({
                "name": name,
                "cat": category or "instant",
                "ph": "i",
                "s": "p",
                "ts": round(when * 1e6, 3),
                "pid": pid_for(node),
                "tid": 0,
                "args": args or {},
            })
        for when, name, node, values in self.counters:
            events.append({
                "name": name,
                "ph": "C",
                "ts": round(when * 1e6, 3),
                "pid": pid_for(node),
                "args": values,
            })
        if extra_events:
            for event in extra_events:
                event = dict(event)
                node = event.pop("node", "")
                event.setdefault("pid", pid_for(node))
                events.append(event)
        # Name the process rows after their nodes (metadata events).
        for label, pid in sorted(pids.items(), key=lambda item: item[1]):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": label}})
            events.append({"name": "process_sort_index", "ph": "M",
                           "pid": pid, "args": {"sort_index": pid}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str,
                           extra_events: list[dict[str, typing.Any]] | None
                           = None) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(extra_events), handle)
