"""Calibration layer: per-phase service moments for the phase model.

The stochastic phase model (:mod:`repro.analysis.phase_model`) composes
queueing stations from the first two moments of each phase's service time.
Those moments come from one of two sources:

- :class:`CostFit` derives them **directly from the cost model contracts**
  — :class:`~repro.runtime.costs.CostModel` constants plus the
  :class:`~repro.common.config.StateDBConfig` backend cost mirror — so a
  prediction needs no simulation at all;
- :class:`EmpiricalFit` recovers them **from an observed run**: tracer
  span groups give per-operation service samples (span duration minus its
  recorded queue wait), block-level services regress onto block size to
  split per-block overhead from the per-transaction marginal, and the
  run's :class:`~repro.metrics.collector.PhaseMetrics` anchor the
  consensus round trip.  Components a short run cannot isolate (client
  CPU, which is never separately spanned) fall back to the cost fit.

An empirical fit is specific to the observed run's policy, backend, and
worker configuration; use it to cross-check the cost-derived fit, not to
extrapolate across policies.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.common.config import StateDBConfig
from repro.runtime.costs import CostModel

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.network import FabricNetwork
    from repro.metrics.collector import PhaseMetrics
    from repro.obs.tracer import Span


@dataclasses.dataclass(frozen=True)
class ServiceMoments:
    """First two moments of a service-time distribution.

    ``scv`` is the squared coefficient of variation Var[S] / E[S]^2 — 0
    for deterministic service, 1 for exponential — the only shape
    information the two-moment queueing approximations consume.
    """

    mean: float
    scv: float = 0.0

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise ValueError(f"service mean must be >= 0, got {self.mean}")
        if self.scv < 0:
            raise ValueError(f"service SCV must be >= 0, got {self.scv}")

    @property
    def var(self) -> float:
        return self.scv * self.mean * self.mean

    @classmethod
    def from_samples(cls, samples: typing.Sequence[float]) -> "ServiceMoments":
        """Sample mean and SCV; degenerate inputs collapse gracefully."""
        if not samples:
            return cls(mean=0.0, scv=0.0)
        mean = sum(samples) / len(samples)
        if mean <= 0 or len(samples) < 2:
            return cls(mean=max(mean, 0.0), scv=0.0)
        var = (sum((value - mean) ** 2 for value in samples)
               / (len(samples) - 1))
        return cls(mean=mean, scv=var / (mean * mean))

    @staticmethod
    def mixture(
        components: typing.Sequence[tuple[float, "ServiceMoments"]],
    ) -> "ServiceMoments":
        """Moments of a probabilistic mixture of service distributions.

        ``components`` pairs each branch's probability weight with its
        moments; weights are normalised.  Used to pool per-channel block
        services into one station when channels share a peer.
        """
        total = sum(weight for weight, _moments in components)
        if total <= 0:
            return ServiceMoments(mean=0.0, scv=0.0)
        mean = sum(weight * moments.mean
                   for weight, moments in components) / total
        second = sum(weight * (moments.var + moments.mean ** 2)
                     for weight, moments in components) / total
        if mean <= 0:
            return ServiceMoments(mean=0.0, scv=0.0)
        var = max(0.0, second - mean * mean)
        return ServiceMoments(mean=mean, scv=var / (mean * mean))


class CostFit:
    """Service moments read straight off the calibrated cost model.

    Every cost-model constant is a deterministic per-operation charge, so
    cost-derived services carry SCV 0; stochastic spread enters the phase
    model through block-size variability and the queueing formulas, not
    through these primitives.
    """

    source = "costs"

    def __init__(self, costs: CostModel | None = None,
                 statedb: StateDBConfig | None = None) -> None:
        self.costs = costs if costs is not None else CostModel()
        self.statedb = statedb if statedb is not None else StateDBConfig()

    # -- client ---------------------------------------------------------

    def client_service(self) -> ServiceMoments:
        """Per-transaction client CPU occupying the SDK event loop."""
        costs = self.costs
        return ServiceMoments(costs.client_prep_cpu
                              + costs.client_collect_cpu
                              + costs.client_submit_cpu)

    def client_pipeline_latency(self, endorsements: int) -> float:
        """Asynchronous SDK pipeline latency (adds no client CPU)."""
        return (self.costs.sdk_base_latency
                + self.costs.sdk_per_endorsement_latency * endorsements)

    # -- endorse --------------------------------------------------------

    def endorse_service(self) -> ServiceMoments:
        """Per-proposal CPU occupying an endorser slot."""
        return ServiceMoments(self.costs.endorse_cpu)

    def endorse_latency_overhead(self) -> float:
        """Chaincode-container round trip (latency, not slot time)."""
        return self.costs.chaincode_container_latency

    # -- order ----------------------------------------------------------

    def order_envelope_service(self) -> ServiceMoments:
        """Per-envelope OSN CPU (TLS, unmarshalling, size checks)."""
        return ServiceMoments(self.costs.orderer_per_envelope_cpu)

    def consensus_round_trip(self, orderer_kind: str,
                             network_latency: float) -> float:
        """Broadcast-to-cut consensus overhead beyond block formation."""
        costs = self.costs
        if orderer_kind == "raft":
            # Leader append + quorum replication round trip + fsync.
            return (costs.raft_append_cpu + costs.consensus_fsync_io
                    + 4 * network_latency)
        if orderer_kind == "kafka":
            # Produce to the partition leader, ISR ack, consume back.
            return (costs.kafka_append_cpu + costs.consensus_fsync_io
                    + 6 * network_latency)
        return 2 * network_latency  # solo: OSN-internal hand-off

    # -- validate -------------------------------------------------------

    def validate_per_tx_marginal(self, endorsements: int,
                                 reads_per_tx: float = 0.0) -> float:
        """Marginal block-service seconds added by one more transaction."""
        costs = self.costs
        workers = min(costs.validator_workers, costs.peer_cores)
        return (costs.vscc_tx_cpu(endorsements) / workers
                + costs.mvcc_per_tx_cpu
                + costs.statedb_commit_io(self.statedb, 1.0)
                - costs.statedb_commit_io(self.statedb, 0.0)
                + costs.statedb_read_io(self.statedb, 1.0, reads_per_tx))

    def validate_block_service(self, block_txs: float, endorsements: int,
                               reads_per_tx: float = 0.0) -> ServiceMoments:
        """Wall-clock service of one block through the validate pipeline.

        VSCC spreads across the worker pool; header verify, MVCC, the
        commit fsync, and the state-database batch are serial — the same
        split as :meth:`CapacityModel.validate_capacity` and the simulated
        :class:`~repro.peer.validator.BlockValidator`.
        """
        costs = self.costs
        workers = min(costs.validator_workers, costs.peer_cores)
        mean = (costs.block_verify_cpu
                + block_txs * costs.vscc_tx_cpu(endorsements) / workers
                + block_txs * costs.mvcc_per_tx_cpu
                + costs.commit_per_block_io
                + costs.statedb_commit_io(self.statedb, block_txs)
                + costs.statedb_read_io(self.statedb, block_txs,
                                        reads_per_tx))
        return ServiceMoments(mean)

    # -- per-tx CPU/IO demands (capacity accounting) --------------------

    def validate_cpu_per_tx(self, endorsements: int) -> float:
        """Peer CPU seconds per validated transaction (all workers)."""
        return (self.costs.vscc_tx_cpu(endorsements)
                + self.costs.mvcc_per_tx_cpu)

    def statedb_per_tx(self, reads_per_tx: float = 0.0) -> float:
        """Serial state-database seconds per committed transaction."""
        return (self.costs.statedb_commit_io(self.statedb, 1.0)
                - self.costs.statedb_commit_io(self.statedb, 0.0)
                + self.costs.statedb_read_io(self.statedb, 1.0, reads_per_tx))


class EmpiricalFit(CostFit):
    """Cost fit with moments re-fitted from an observed run's spans.

    Span groups used (service = span duration minus its recorded queue
    wait): ``endorse`` for the endorsement service (the span covers the
    chaincode container round trip, so the separate latency overhead
    collapses to zero), ``order.broadcast`` for per-envelope OSN handling,
    and ``validate.block`` — whose ``txs`` annotation lets a least-squares
    regression split the per-block fixed overhead from the per-transaction
    marginal.  A supplied :class:`PhaseMetrics` additionally anchors the
    consensus round trip from the measured order latency.
    """

    source = "empirical"

    def __init__(self, costs: CostModel | None = None,
                 statedb: StateDBConfig | None = None,
                 endorse: ServiceMoments | None = None,
                 order_envelope: ServiceMoments | None = None,
                 validate_fixed: ServiceMoments | None = None,
                 validate_marginal: float | None = None,
                 consensus_rtt: float | None = None) -> None:
        super().__init__(costs, statedb)
        self._endorse = endorse
        self._order_envelope = order_envelope
        self._validate_fixed = validate_fixed
        self._validate_marginal = validate_marginal
        self._consensus_rtt = consensus_rtt

    # -- construction ---------------------------------------------------

    @classmethod
    def from_spans(cls, spans: typing.Sequence["Span"],
                   costs: CostModel | None = None,
                   statedb: StateDBConfig | None = None,
                   metrics: "PhaseMetrics | None" = None,
                   batch_timeout: float = 1.0,
                   batch_size: int = 100) -> "EmpiricalFit":
        """Fit service moments from a run's tracer span groups."""
        endorse_samples = []
        envelope_samples = []
        block_points: list[tuple[float, float]] = []
        for span in spans:
            duration = span.duration
            if duration is None:
                continue
            service = duration - (span.wait or 0.0)
            if service < 0:
                continue
            if span.name == "endorse":
                endorse_samples.append(service)
            elif span.name == "order.broadcast":
                envelope_samples.append(service)
            elif span.name == "validate.block":
                txs = (span.args or {}).get("txs")
                if isinstance(txs, (int, float)) and txs > 0:
                    block_points.append((float(txs), service))
        fixed, marginal, residual_var = _regress_block_service(block_points)
        consensus_rtt = None
        if metrics is not None and metrics.order_latency > 0:
            # The measured order latency is formation wait + consensus;
            # subtract the expected residual wait of the observed regime.
            rate = max(metrics.order_throughput, 1e-9)
            window = min(batch_size / rate, batch_timeout)
            consensus_rtt = max(0.0, metrics.order_latency - window / 2.0)
        return cls(
            costs=costs, statedb=statedb,
            endorse=(ServiceMoments.from_samples(endorse_samples)
                     if endorse_samples else None),
            order_envelope=(ServiceMoments.from_samples(envelope_samples)
                            if envelope_samples else None),
            validate_fixed=fixed,
            validate_marginal=marginal,
            consensus_rtt=consensus_rtt)

    @classmethod
    def from_network(cls, network: "FabricNetwork",
                     metrics: "PhaseMetrics | None" = None) -> "EmpiricalFit":
        """Fit from a completed observed run (``observe=True``)."""
        if network.obs is None:
            raise ValueError("empirical fit needs an observed network "
                             "(FabricNetwork(..., observe=True))")
        orderer = network.topology.orderer
        return cls.from_spans(
            network.obs.tracer.spans,
            costs=network.context.costs,
            statedb=network.topology.statedb,
            metrics=metrics,
            batch_timeout=orderer.batch_timeout,
            batch_size=orderer.batch_size)

    # -- overrides ------------------------------------------------------

    def endorse_service(self) -> ServiceMoments:
        if self._endorse is not None:
            return self._endorse
        return super().endorse_service()

    def endorse_latency_overhead(self) -> float:
        if self._endorse is not None:
            return 0.0  # the observed span already covers the container
        return super().endorse_latency_overhead()

    def order_envelope_service(self) -> ServiceMoments:
        if self._order_envelope is not None:
            return self._order_envelope
        return super().order_envelope_service()

    def consensus_round_trip(self, orderer_kind: str,
                             network_latency: float) -> float:
        if self._consensus_rtt is not None:
            return self._consensus_rtt
        return super().consensus_round_trip(orderer_kind, network_latency)

    def validate_per_tx_marginal(self, endorsements: int,
                                 reads_per_tx: float = 0.0) -> float:
        if self._validate_marginal is not None:
            return self._validate_marginal
        return super().validate_per_tx_marginal(endorsements, reads_per_tx)

    def validate_block_service(self, block_txs: float, endorsements: int,
                               reads_per_tx: float = 0.0) -> ServiceMoments:
        if self._validate_fixed is not None:
            marginal = self.validate_per_tx_marginal(endorsements,
                                                     reads_per_tx)
            mean = self._validate_fixed.mean + block_txs * marginal
            var = self._validate_fixed.var
            scv = var / (mean * mean) if mean > 0 else 0.0
            return ServiceMoments(mean, scv)
        return super().validate_block_service(block_txs, endorsements,
                                              reads_per_tx)


def _regress_block_service(
    points: typing.Sequence[tuple[float, float]],
) -> tuple[ServiceMoments | None, float | None, float]:
    """Least-squares split of block service into fixed + per-tx marginal.

    Returns ``(fixed moments, marginal seconds, residual variance)``;
    ``(None, None, 0.0)`` when the points cannot support a fit.  With a
    single observed block size the whole mean is attributed to the
    marginal (no intercept is identifiable).
    """
    if not points:
        return None, None, 0.0
    n = len(points)
    mean_x = sum(x for x, _y in points) / n
    mean_y = sum(y for _x, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _y in points)
    if var_x <= 1e-12:
        if mean_x <= 0:
            return None, None, 0.0
        return ServiceMoments(0.0), mean_y / mean_x, 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    slope = max(0.0, cov / var_x)
    intercept = max(0.0, mean_y - slope * mean_x)
    residuals = [y - (intercept + slope * x) for x, y in points]
    residual_var = (sum(r * r for r in residuals) / (n - 1)
                    if n > 1 else 0.0)
    scv = (residual_var / (intercept * intercept)
           if intercept > 1e-12 else 0.0)
    return ServiceMoments(intercept, scv), slope, residual_var
