"""Analytical cross-checks: closed-form capacity and queueing estimates.

The simulator's saturation points should be predictable from the cost model
alone; this package derives them so tests (and users) can check that the
simulation agrees with first-principles queueing arguments, in the spirit of
the SRN modelling work the paper cites as related work [18].
"""

from repro.analysis.capacity import CapacityModel, PhaseCapacities
from repro.analysis.latency import LatencyBreakdown, LatencyModel
from repro.analysis.queueing import mm1_wait, mmc_erlang_c, mmc_wait

__all__ = [
    "CapacityModel",
    "LatencyBreakdown",
    "LatencyModel",
    "PhaseCapacities",
    "mm1_wait",
    "mmc_erlang_c",
    "mmc_wait",
]
