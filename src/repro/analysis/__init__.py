"""Analytical cross-checks: closed-form capacity, latency, and planning.

The simulator's saturation points should be predictable from the cost model
alone; this package derives them so tests (and users) can check that the
simulation agrees with first-principles queueing arguments, in the spirit of
the SRN modelling work the paper cites as related work [18].

Two tiers live here.  The first-moment models
(:class:`CapacityModel`, :class:`LatencyModel`) predict saturation rates
and mean latency plateaus.  The stochastic phase model
(:class:`PhaseModel`) composes the full execute–order–validate pipeline
from two-moment queueing stations — per-channel latency *distributions*
(p50/p95/p99), station-by-station utilization, and system capacity with
cross-channel resource sharing — calibrated either straight off the cost
model (:class:`CostFit`) or from an observed run's tracer spans
(:class:`EmpiricalFit`).  :func:`plan_capacity` inverts it into a
deployment plan, and ``repro crossval`` keeps it honest against the
simulator.
"""

from repro.analysis.capacity import (
    CapacityModel,
    PhaseCapacities,
    deployment_capacities,
    deployment_system_capacity,
)
from repro.analysis.fit import CostFit, EmpiricalFit, ServiceMoments
from repro.analysis.latency import (
    LatencyBreakdown,
    LatencyModel,
    deployment_breakdown,
    deployment_breakdowns,
)
from repro.analysis.phase_model import (
    ChannelPrediction,
    PhaseLatency,
    PhaseModel,
    StationLoad,
    SystemPrediction,
    WaitDistribution,
)
from repro.analysis.planner import CapacityPlan, PlanOption, plan_capacity
from repro.analysis.queueing import (
    mg1_wait,
    mgc_wait,
    mm1_wait,
    mmc_erlang_c,
    mmc_wait,
)
from repro.analysis.workload import (
    ChannelDemand,
    offered_rate,
    resolve_demands,
)

__all__ = [
    "CapacityModel",
    "CapacityPlan",
    "ChannelDemand",
    "ChannelPrediction",
    "CostFit",
    "EmpiricalFit",
    "LatencyBreakdown",
    "LatencyModel",
    "PhaseCapacities",
    "PhaseLatency",
    "PhaseModel",
    "PlanOption",
    "ServiceMoments",
    "StationLoad",
    "SystemPrediction",
    "WaitDistribution",
    "deployment_breakdown",
    "deployment_breakdowns",
    "deployment_capacities",
    "deployment_system_capacity",
    "mg1_wait",
    "mgc_wait",
    "mm1_wait",
    "mmc_erlang_c",
    "mmc_wait",
    "offered_rate",
    "plan_capacity",
    "resolve_demands",
]
