"""Closed-form latency predictions below saturation.

Complements :mod:`repro.analysis.capacity`: where the capacity model
predicts *where* throughput saturates, this predicts the latency plateaus
the paper reports in Table III and Figs. 6-7 before the knee:

- **execute latency** = client CPU + SDK pipeline latency (base + per
  endorsement) + endorsement service (container round trip + CPU) + client
  queueing (M/D/1-style at the client's utilization);
- **order latency** = mean residual block-formation wait (whichever of
  BatchSize/rate or BatchTimeout binds) + consensus round trip;
- **validate latency** = block validation (VSCC across the worker pool +
  serial MVCC + commit I/O) for the expected block size.

These are first-moment approximations, good to a few tens of percent below
~90% utilization — exactly the regime the paper's latency tables are
measured in.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.queueing import mm1_wait
from repro.runtime.costs import CostModel


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """Predicted phase latencies (seconds) at a given arrival rate."""

    execute: float
    order: float
    validate: float

    @property
    def order_validate(self) -> float:
        """The paper's combined "Order & Validate" number."""
        return self.order + self.validate

    @property
    def total(self) -> float:
        return self.execute + self.order + self.validate


class LatencyModel:
    """Analytical per-phase latency for a deployment below saturation."""

    def __init__(self, costs: CostModel, batch_size: int = 100,
                 batch_timeout: float = 1.0,
                 network_latency: float = 0.00025) -> None:
        self.costs = costs
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.network_latency = network_latency

    def expected_block_size(self, rate: float) -> float:
        """Transactions per block: size-cut or timeout-cut."""
        by_timeout = rate * self.batch_timeout
        return min(float(self.batch_size), max(1.0, by_timeout))

    def block_formation_wait(self, rate: float) -> float:
        """Mean wait from envelope arrival to its block being cut."""
        if rate <= 0:
            return self.batch_timeout
        fill_time = self.batch_size / rate
        window = min(fill_time, self.batch_timeout)
        # A random arrival waits on average half the cutting window.
        return window / 2.0

    def execute_latency(self, rate: float, num_clients: int,
                        endorsements: int) -> float:
        """Mean execute-phase latency at aggregate arrival ``rate``."""
        costs = self.costs
        per_client_rate = rate / max(1, num_clients)
        client_service = (costs.client_prep_cpu + costs.client_collect_cpu
                          + costs.client_submit_cpu)
        client_wait = mm1_wait(per_client_rate, 1.0 / client_service)
        endorse_service = (costs.endorse_cpu
                           + costs.chaincode_container_latency)
        pipeline = (costs.sdk_base_latency
                    + costs.sdk_per_endorsement_latency * endorsements)
        round_trips = 2 * self.network_latency
        return (client_service + client_wait + pipeline + endorse_service
                + round_trips)

    def order_latency(self, rate: float,
                      consensus_round_trip: float = 0.002) -> float:
        """Broadcast to block-cut: formation wait + consensus."""
        return (self.network_latency + consensus_round_trip
                + self.block_formation_wait(rate))

    def validate_latency(self, rate: float, endorsements: int) -> float:
        """Block-cut to commit for the expected block size."""
        costs = self.costs
        block = self.expected_block_size(rate)
        vscc = (block * costs.vscc_tx_cpu(endorsements)
                / min(costs.validator_workers, costs.peer_cores))
        serial = (costs.block_verify_cpu + block * costs.mvcc_per_tx_cpu
                  + costs.commit_per_block_io
                  + block * costs.commit_per_tx_io)
        return self.network_latency + vscc + serial

    def breakdown(self, rate: float, num_clients: int,
                  endorsements: int) -> LatencyBreakdown:
        return LatencyBreakdown(
            execute=self.execute_latency(rate, num_clients, endorsements),
            order=self.order_latency(rate),
            validate=self.validate_latency(rate, endorsements))
