"""Closed-form latency predictions below saturation.

Complements :mod:`repro.analysis.capacity`: where the capacity model
predicts *where* throughput saturates, this predicts the latency plateaus
the paper reports in Table III and Figs. 6-7 before the knee:

- **execute latency** = client CPU + SDK pipeline latency (base + per
  endorsement) + endorsement service (container round trip + CPU) + client
  queueing (M/D/1-style at the client's utilization);
- **order latency** = mean residual block-formation wait (whichever of
  BatchSize/rate or BatchTimeout binds) + consensus round trip;
- **validate latency** = block validation (VSCC across the worker pool +
  serial MVCC + commit I/O) for the expected block size.

These are first-moment approximations, good to a few tens of percent below
~90% utilization — exactly the regime the paper's latency tables are
measured in.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.queueing import mm1_wait
from repro.analysis.workload import resolve_demands
from repro.common.config import TopologyConfig, WorkloadConfig
from repro.runtime.costs import CostModel


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """Predicted phase latencies (seconds) at a given arrival rate."""

    execute: float
    order: float
    validate: float

    @property
    def order_validate(self) -> float:
        """The paper's combined "Order & Validate" number."""
        return self.order + self.validate

    @property
    def total(self) -> float:
        return self.execute + self.order + self.validate


class LatencyModel:
    """Analytical per-phase latency for a deployment below saturation."""

    def __init__(self, costs: CostModel, batch_size: int = 100,
                 batch_timeout: float = 1.0,
                 network_latency: float = 0.00025) -> None:
        self.costs = costs
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.network_latency = network_latency

    def expected_block_size(self, rate: float) -> float:
        """Transactions per block: size-cut or timeout-cut."""
        by_timeout = rate * self.batch_timeout
        return min(float(self.batch_size), max(1.0, by_timeout))

    def block_formation_wait(self, rate: float) -> float:
        """Mean wait from envelope arrival to its block being cut."""
        if rate <= 0:
            return self.batch_timeout
        fill_time = self.batch_size / rate
        window = min(fill_time, self.batch_timeout)
        # A random arrival waits on average half the cutting window.
        return window / 2.0

    def execute_latency(self, rate: float, num_clients: int,
                        endorsements: int) -> float:
        """Mean execute-phase latency at aggregate arrival ``rate``."""
        costs = self.costs
        per_client_rate = rate / max(1, num_clients)
        client_service = (costs.client_prep_cpu + costs.client_collect_cpu
                          + costs.client_submit_cpu)
        client_wait = mm1_wait(per_client_rate, 1.0 / client_service)
        endorse_service = (costs.endorse_cpu
                           + costs.chaincode_container_latency)
        pipeline = (costs.sdk_base_latency
                    + costs.sdk_per_endorsement_latency * endorsements)
        round_trips = 2 * self.network_latency
        return (client_service + client_wait + pipeline + endorse_service
                + round_trips)

    def order_latency(self, rate: float,
                      consensus_round_trip: float = 0.002) -> float:
        """Broadcast to block-cut: formation wait + consensus."""
        return (self.network_latency + consensus_round_trip
                + self.block_formation_wait(rate))

    def validate_latency(self, rate: float, endorsements: int) -> float:
        """Block-cut to commit for the expected block size."""
        costs = self.costs
        block = self.expected_block_size(rate)
        vscc = (block * costs.vscc_tx_cpu(endorsements)
                / min(costs.validator_workers, costs.peer_cores))
        serial = (costs.block_verify_cpu + block * costs.mvcc_per_tx_cpu
                  + costs.commit_per_block_io
                  + block * costs.commit_per_tx_io)
        return self.network_latency + vscc + serial

    def breakdown(self, rate: float, num_clients: int,
                  endorsements: int) -> LatencyBreakdown:
        return LatencyBreakdown(
            execute=self.execute_latency(rate, num_clients, endorsements),
            order=self.order_latency(rate),
            validate=self.validate_latency(rate, endorsements))


def deployment_breakdowns(
        topology: TopologyConfig, workload: WorkloadConfig,
        costs: CostModel | None = None,
        workload_kind: str = "unique") -> dict[str, LatencyBreakdown]:
    """Per-channel latency breakdowns for a full deployment config.

    Resolves per-channel arrival rates, client pools, and endorsement
    counts the way the simulator does (classic round-robin, per-channel
    mixes, or aggregated client populations), then evaluates the model
    channel by channel — each channel cuts its own blocks, so formation
    waits and block sizes differ when the traffic mix does.
    """
    model = LatencyModel(
        costs if costs is not None else CostModel(),
        batch_size=topology.orderer.batch_size,
        batch_timeout=topology.orderer.batch_timeout,
        network_latency=topology.network_latency)
    return {
        demand.channel: model.breakdown(demand.rate, demand.clients,
                                        demand.endorsements)
        for demand in resolve_demands(topology, workload, workload_kind)}


def deployment_breakdown(
        topology: TopologyConfig, workload: WorkloadConfig,
        costs: CostModel | None = None,
        workload_kind: str = "unique") -> LatencyBreakdown:
    """The rate-weighted aggregate of :func:`deployment_breakdowns`.

    What a deployment-wide latency measurement mixes together: each
    channel's breakdown weighted by its share of the committed traffic.
    Idle channels contribute nothing (their latency is never sampled).
    """
    demands = resolve_demands(topology, workload, workload_kind)
    per_channel = deployment_breakdowns(topology, workload, costs,
                                        workload_kind)
    total = sum(demand.rate for demand in demands)
    if total <= 0:
        return LatencyBreakdown(execute=0.0, order=0.0, validate=0.0)
    execute = order = validate = 0.0
    for demand in demands:
        weight = demand.rate / total
        breakdown = per_channel[demand.channel]
        execute += weight * breakdown.execute
        order += weight * breakdown.order
        validate += weight * breakdown.validate
    return LatencyBreakdown(execute=execute, order=order,
                            validate=validate)
