"""Stochastic phase model: the pipeline as a network of queueing stations.

Where :class:`~repro.analysis.capacity.CapacityModel` and
:class:`~repro.analysis.latency.LatencyModel` predict single operating
points (saturation rates, mean latency at a given load), this module
composes the whole execute–order–validate pipeline from two-moment
queueing stations and produces latency *distributions* — p50/p95/p99 per
channel and per phase — plus a station-by-station utilization and
capacity account, in closed form:

- **execute** — each client process is an M/G/1 on its SDK event loop;
  endorsing peers are shared across channels, so each peer's proposal
  stream sums every channel whose policy names it (AND fans one
  transaction to all its targets, OR spreads across them), served by an
  M/G/c over the peer's endorser slots (Allen–Cunneen);
- **order** — OSN envelope handling is an M/G/c over orderer cores; block
  formation contributes the residual wait of the cutting window
  ``min(batch_size/λ, batch_timeout)`` — uniform over the window, which is
  exactly the BatchSize/BatchTimeout crossover the paper sweeps — plus a
  consensus round trip per orderer kind;
- **validate** — each (peer, channel) runs a serial block pipeline
  (matching the simulator's per-channel :class:`BlockValidator`), an
  M/G/1 in *blocks* whose service spreads VSCC over the worker pool and
  serialises MVCC, the ledger fsync, and the state-database batch; in the
  timeout-cutting regime the Poisson block-size variance feeds the service
  SCV.

Cross-channel coupling appears twice: in the endorser-slot arrivals and
in three shared per-peer stations (CPU, commit disk, the serial state-DB)
that bound aggregate capacity even though each channel's block pipeline is
private.  System capacity is the first station to saturate as the offered
load scales with channel shares held fixed; block sizes re-solve along the
way, so a channel cutting on timeout at low load correctly cuts full
blocks near saturation.

Latency quantiles come from a lognormal matched to each phase's first two
moments; waits carry an atom at zero (the probability of no queueing) with
an exponential conditional tail — the standard M/G/1 heavy-traffic shape.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.analysis.fit import CostFit, ServiceMoments
from repro.analysis.queueing import mg1_wait, mgc_wait, mmc_erlang_c
from repro.analysis.workload import (
    ChannelDemand,
    offered_rate,
    resolve_demands,
)
from repro.common.config import TopologyConfig, WorkloadConfig
from repro.metrics.stats import lognormal_quantile

__all__ = ["WaitDistribution", "PhaseLatency", "StationLoad",
           "ChannelPrediction", "SystemPrediction", "PhaseModel"]


@dataclasses.dataclass(frozen=True)
class WaitDistribution:
    """A queueing delay: an atom at zero plus an exponential tail.

    ``probability`` is P(wait > 0); ``conditional_mean`` is E[W | W > 0].
    The exponential conditional is the classical heavy-traffic shape of
    M/G/1 and M/M/c waits, and gives closed-form quantiles: the q-th
    quantile is zero while q stays inside the atom and
    ``conditional_mean * ln(probability / (1 - q))`` beyond it.
    """

    probability: float
    conditional_mean: float

    @property
    def mean(self) -> float:
        return self.probability * self.conditional_mean

    @property
    def var(self) -> float:
        if not math.isfinite(self.conditional_mean):
            return math.inf
        second = 2.0 * self.probability * self.conditional_mean ** 2
        return second - self.mean ** 2

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile probability {q} must be in (0, 1)")
        if not math.isfinite(self.conditional_mean):
            return math.inf
        if q <= 1.0 - self.probability or self.probability <= 0:
            return 0.0
        return self.conditional_mean * math.log(
            self.probability / (1.0 - q))

    @classmethod
    def none(cls) -> "WaitDistribution":
        return cls(probability=0.0, conditional_mean=0.0)

    @classmethod
    def saturated(cls) -> "WaitDistribution":
        return cls(probability=1.0, conditional_mean=math.inf)

    @classmethod
    def mg1(cls, arrival_rate: float,
            service: ServiceMoments) -> "WaitDistribution":
        """M/G/1 wait (Pollaczek–Khinchine mean, P(wait) = ρ)."""
        if arrival_rate <= 0 or service.mean <= 0:
            return cls.none()
        rho = arrival_rate * service.mean
        if rho >= 1:
            return cls.saturated()
        wait = mg1_wait(arrival_rate, service.mean, service.scv)
        return cls(probability=rho, conditional_mean=wait / rho)

    @classmethod
    def mgc(cls, arrival_rate: float, service: ServiceMoments,
            servers: int) -> "WaitDistribution":
        """M/G/c wait (Allen–Cunneen mean, P(wait) = Erlang-C)."""
        if arrival_rate <= 0 or service.mean <= 0:
            return cls.none()
        if arrival_rate * service.mean / servers >= 1:
            return cls.saturated()
        wait = mgc_wait(arrival_rate, service.mean, service.scv, servers)
        wait_probability = mmc_erlang_c(arrival_rate, 1.0 / service.mean,
                                        servers)
        if wait_probability <= 0:
            return cls.none()
        return cls(probability=wait_probability,
                   conditional_mean=wait / wait_probability)


@dataclasses.dataclass(frozen=True)
class PhaseLatency:
    """A latency distribution summarised by two moments and quantiles."""

    mean: float
    var: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_moments(cls, mean: float, var: float) -> "PhaseLatency":
        """Quantiles from the lognormal matching (mean, variance)."""
        if not math.isfinite(mean) or not math.isfinite(var):
            return cls(mean=math.inf, var=math.inf, p50=math.inf,
                       p95=math.inf, p99=math.inf)
        mean = max(mean, 0.0)
        var = max(var, 0.0)
        return cls(mean=mean, var=var,
                   p50=lognormal_quantile(mean, var, 0.50),
                   p95=lognormal_quantile(mean, var, 0.95),
                   p99=lognormal_quantile(mean, var, 0.99))

    @classmethod
    def mixture(cls, components: typing.Sequence[
            tuple[float, "PhaseLatency"]]) -> "PhaseLatency":
        """Rate-weighted mixture of per-channel phase latencies."""
        total = sum(weight for weight, _latency in components)
        if total <= 0:
            return cls.from_moments(0.0, 0.0)
        if any(not math.isfinite(latency.mean)
               for weight, latency in components if weight > 0):
            return cls.from_moments(math.inf, math.inf)
        mean = sum(weight * latency.mean
                   for weight, latency in components) / total
        second = sum(weight * (latency.var + latency.mean ** 2)
                     for weight, latency in components) / total
        return cls.from_moments(mean, max(0.0, second - mean * mean))

    def as_dict(self) -> dict[str, float]:
        return {"mean": self.mean, "p50": self.p50, "p95": self.p95,
                "p99": self.p99}


@dataclasses.dataclass(frozen=True)
class StationLoad:
    """One station's load at the offered rate, and where it saturates."""

    name: str
    #: Utilization in [0, inf) at the current offered load.
    utilization: float
    #: Total system tx/s at which this station reaches ρ = 1, scaling the
    #: offered load with per-channel shares held fixed.
    capacity: float

    def as_dict(self) -> dict[str, typing.Any]:
        return {"name": self.name, "utilization": self.utilization,
                "capacity": self.capacity}


@dataclasses.dataclass(frozen=True)
class ChannelPrediction:
    """One channel's predicted per-phase latency distributions."""

    channel: str
    rate: float
    endorsements: int
    block_size: float
    formation_window: float
    execute: PhaseLatency
    order: PhaseLatency
    validate: PhaseLatency
    total: PhaseLatency

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "channel": self.channel,
            "rate": self.rate,
            "endorsements": self.endorsements,
            "block_size": self.block_size,
            "formation_window": self.formation_window,
            "execute": self.execute.as_dict(),
            "order": self.order.as_dict(),
            "validate": self.validate.as_dict(),
            "total": self.total.as_dict(),
        }


@dataclasses.dataclass(frozen=True)
class SystemPrediction:
    """The model's full output for one deployment at one offered load."""

    channels: list[ChannelPrediction]
    stations: list[StationLoad]
    offered: float
    capacity: float
    bottleneck: str

    @property
    def throughput(self) -> float:
        """Sustained commit rate: offered load clipped at capacity."""
        return min(self.offered, self.capacity)

    @property
    def saturated(self) -> bool:
        return self.offered >= self.capacity

    def _aggregate(self, phase: str) -> PhaseLatency:
        return PhaseLatency.mixture(
            [(channel.rate, getattr(channel, phase))
             for channel in self.channels if channel.rate > 0])

    @property
    def latency(self) -> PhaseLatency:
        """End-to-end latency mixed across channels by rate."""
        return self._aggregate("total")

    @property
    def execute(self) -> PhaseLatency:
        return self._aggregate("execute")

    @property
    def order(self) -> PhaseLatency:
        return self._aggregate("order")

    @property
    def validate(self) -> PhaseLatency:
        return self._aggregate("validate")

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "offered": self.offered,
            "capacity": self.capacity,
            "throughput": self.throughput,
            "bottleneck": self.bottleneck,
            "latency": self.latency.as_dict(),
            "execute": self.execute.as_dict(),
            "order": self.order.as_dict(),
            "validate": self.validate.as_dict(),
            "stations": [station.as_dict() for station in self.stations],
            "channels": [channel.as_dict() for channel in self.channels],
        }


def _reads_per_tx(demand: ChannelDemand) -> float:
    """Validation-time state reads per tx implied by the workload shape."""
    return 1.0 if demand.workload == "conflict" else 0.0


class PhaseModel:
    """Composes the per-phase stations for one deployment configuration.

    Build it from the same :class:`TopologyConfig` / :class:`WorkloadConfig`
    pair a :class:`~repro.fabric.network.FabricNetwork` consumes, optionally
    with a calibration ``fit`` (default: :class:`CostFit` straight off the
    cost model and the topology's state-DB backend).  :meth:`predict` is
    closed-form — microseconds per call, no simulation.
    """

    def __init__(self, topology: TopologyConfig,
                 workload: WorkloadConfig,
                 fit: CostFit | None = None,
                 workload_kind: str = "unique") -> None:
        self.topology = topology
        self.workload = workload
        self.fit = fit if fit is not None else CostFit(
            statedb=topology.statedb)
        self.demands = resolve_demands(topology, workload, workload_kind)

    # -- per-channel block cutting --------------------------------------

    def _block_size(self, rate: float) -> tuple[float, float]:
        """Expected block size and its variance at a channel rate.

        Below the crossover (``rate * timeout < size``) blocks cut on
        timeout and the size is Poisson with mean ``rate * timeout``;
        above it blocks fill to ``batch_size`` deterministically.
        """
        orderer = self.topology.orderer
        pending = rate * orderer.batch_timeout
        if pending >= orderer.batch_size:
            return float(orderer.batch_size), 0.0
        return max(1.0, pending), pending

    def _formation_window(self, rate: float) -> float:
        orderer = self.topology.orderer
        if rate <= 0:
            return orderer.batch_timeout
        return min(orderer.batch_size / rate, orderer.batch_timeout)

    # -- shared arrival processes ---------------------------------------

    def _endorser_arrivals(self, scale: float = 1.0) -> dict[str, float]:
        """Proposals/s arriving at each endorsing peer, channels summed."""
        arrivals: dict[str, float] = {}
        for demand in self.demands:
            rate = demand.rate * scale
            if rate <= 0 or demand.targets == 0:
                continue
            share = rate * demand.endorsements / demand.targets
            for principal in demand.policy.principals():
                arrivals[principal] = arrivals.get(principal, 0.0) + share
        return arrivals

    def _block_service(self, demand: ChannelDemand,
                       rate: float) -> tuple[ServiceMoments, float, float]:
        """(block service moments, block size, block arrival rate)."""
        size, size_var = self._block_size(rate)
        base = self.fit.validate_block_service(size, demand.endorsements,
                                               _reads_per_tx(demand))
        marginal = self.fit.validate_per_tx_marginal(demand.endorsements,
                                                     _reads_per_tx(demand))
        var = base.var + marginal * marginal * size_var
        scv = var / (base.mean * base.mean) if base.mean > 0 else 0.0
        return (ServiceMoments(base.mean, scv), size,
                rate / size if rate > 0 else 0.0)

    # -- station utilizations -------------------------------------------

    def _station_utilizations(self, scale: float) -> dict[str, float]:
        """Utilization of every station with all rates scaled by ``scale``.

        Block sizes are re-solved at the scaled rate, so the
        timeout-vs-size cutting regime tracks the load — the property that
        makes the saturation search honest for timeout-regime channels.
        """
        fit = self.fit
        costs = fit.costs
        util: dict[str, float] = {}

        # Client SDK event loops, per channel.
        client_mean = fit.client_service().mean
        for demand in self.demands:
            rate = demand.rate * scale
            if rate <= 0:
                continue
            if demand.clients == 0:
                util[f"client:{demand.channel}"] = math.inf
                continue
            util[f"client:{demand.channel}"] = (
                rate / demand.clients * client_mean)

        # Endorser slots: the busiest peer binds.
        arrivals = self._endorser_arrivals(scale)
        slots = min(costs.endorser_concurrency, costs.peer_cores)
        busiest = max(arrivals.values(), default=0.0)
        util["endorse"] = busiest * fit.endorse_service().mean / slots

        # OSN envelope handling + block signing.
        envelope = fit.order_envelope_service().mean
        osn_cpu = offered_rate(self.demands) * scale * envelope
        for demand in self.demands:
            rate = demand.rate * scale
            if rate <= 0:
                continue
            _service, _size, blocks = self._block_service(demand, rate)
            osn_cpu += blocks * costs.block_sign_cpu
        util["order.cpu"] = osn_cpu / costs.orderer_cores

        # Per-(peer, channel) serial block pipelines, plus the three
        # peer-wide shared resources the pipelines compete over.
        peer_cpu = busiest * costs.endorse_cpu
        peer_disk = 0.0
        peer_statedb = 0.0
        for demand in self.demands:
            rate = demand.rate * scale
            if rate <= 0:
                continue
            service, size, blocks = self._block_service(demand, rate)
            util[f"validate:{demand.channel}"] = blocks * service.mean
            peer_cpu += (rate * fit.validate_cpu_per_tx(demand.endorsements)
                         + blocks * costs.block_verify_cpu)
            peer_disk += blocks * costs.commit_per_block_io
            reads = _reads_per_tx(demand)
            peer_statedb += blocks * (
                costs.statedb_commit_io(fit.statedb, size)
                + costs.statedb_read_io(fit.statedb, size, reads))
        util["peer.cpu"] = peer_cpu / costs.peer_cores
        util["peer.disk"] = peer_disk
        util["peer.statedb"] = peer_statedb
        return util

    def _stations(self) -> tuple[list[StationLoad], float, str]:
        """Station loads at the offered rate, system capacity, bottleneck.

        Capacity per station is found by bisecting the load scale at which
        its utilization crosses 1 (utilizations are monotone in the scale;
        block sizes re-solve at every probe).
        """
        offered = offered_rate(self.demands)
        if offered <= 0:
            return [], math.inf, ""
        current = self._station_utilizations(1.0)

        def crossing_scale(name: str) -> float:
            load = current[name]
            if load <= 0:
                return math.inf
            if load == math.inf:
                return 0.0
            # Utilization is within a block-amortization factor of linear:
            # 1/load brackets the crossing tightly from one side.
            low, high = 0.0, 1.0 / load
            while self._station_utilizations(high).get(name, 0.0) < 1.0:
                low = high
                high *= 2.0
                if high > 1e9:
                    return math.inf
            for _ in range(50):
                mid = (low + high) / 2.0
                if self._station_utilizations(mid).get(name, 0.0) < 1.0:
                    low = mid
                else:
                    high = mid
            return high

        stations = [StationLoad(name=name, utilization=load,
                                capacity=crossing_scale(name) * offered)
                    for name, load in sorted(current.items())]
        capacity = min((station.capacity for station in stations),
                       default=math.inf)
        bottleneck = min(stations, key=lambda s: s.capacity).name \
            if stations else ""
        return stations, capacity, bottleneck

    # -- the prediction -------------------------------------------------

    def peak_utilization(self) -> float:
        """The busiest station's utilization at the offered load.

        One utilization sweep, no saturation search — the cheap screen the
        capacity planner runs over its whole configuration grid before
        paying for a full :meth:`predict` on the winner.
        """
        return max(self._station_utilizations(1.0).values(), default=0.0)

    def predict(self, with_capacity: bool = True) -> SystemPrediction:
        """Closed-form per-channel latency distributions plus capacity.

        ``with_capacity=False`` skips the per-station saturation search
        (the latency side only): the returned prediction carries no
        stations and reports infinite capacity, so only use it after
        :meth:`peak_utilization` confirmed the load is feasible.
        """
        fit = self.fit
        costs = fit.costs
        topology = self.topology
        net = topology.network_latency

        arrivals = self._endorser_arrivals()
        slots = min(costs.endorser_concurrency, costs.peer_cores)
        busiest = max(arrivals.values(), default=0.0)
        endorse_service = fit.endorse_service()
        endorse_wait = WaitDistribution.mgc(busiest, endorse_service, slots)

        envelope_service = fit.order_envelope_service()
        envelope_wait = WaitDistribution.mgc(
            offered_rate(self.demands), envelope_service,
            costs.orderer_cores)
        consensus = fit.consensus_round_trip(topology.orderer.kind, net)

        client_service = fit.client_service()
        channels = []
        for demand in self.demands:
            channels.append(self._predict_channel(
                demand, client_service, endorse_service, endorse_wait,
                envelope_service, envelope_wait, consensus, net))
        if with_capacity:
            stations, capacity, bottleneck = self._stations()
        else:
            stations, capacity, bottleneck = [], math.inf, ""
        return SystemPrediction(channels=channels, stations=stations,
                                offered=offered_rate(self.demands),
                                capacity=capacity, bottleneck=bottleneck)

    def _predict_channel(self, demand: ChannelDemand,
                         client_service: ServiceMoments,
                         endorse_service: ServiceMoments,
                         endorse_wait: WaitDistribution,
                         envelope_service: ServiceMoments,
                         envelope_wait: WaitDistribution,
                         consensus: float, net: float) -> ChannelPrediction:
        fit = self.fit
        rate = demand.rate

        # Execute: client event loop -> proposals out -> responses back.
        per_client = rate / demand.clients if demand.clients else 0.0
        if demand.clients == 0 and rate > 0:
            client_wait = WaitDistribution.saturated()
        else:
            client_wait = WaitDistribution.mg1(per_client, client_service)
        execute_mean = (client_service.mean + client_wait.mean
                        + fit.client_pipeline_latency(demand.endorsements)
                        + 2.0 * net
                        + endorse_wait.mean + endorse_service.mean
                        + fit.endorse_latency_overhead())
        execute_var = (client_service.var + client_wait.var
                       + endorse_wait.var + endorse_service.var)

        # Order: broadcast -> OSN CPU -> block cut -> consensus.
        window = self._formation_window(rate)
        order_mean = (net + envelope_wait.mean + envelope_service.mean
                      + window / 2.0 + consensus)
        order_var = (envelope_wait.var + envelope_service.var
                     + window * window / 12.0)

        # Validate: deliver -> per-channel block pipeline -> commit.
        block_service, size, blocks = self._block_service(demand, rate)
        validate_wait = WaitDistribution.mg1(blocks, block_service)
        validate_mean = (net + validate_wait.mean + block_service.mean)
        validate_var = validate_wait.var + block_service.var

        execute = PhaseLatency.from_moments(execute_mean, execute_var)
        order = PhaseLatency.from_moments(order_mean, order_var)
        validate = PhaseLatency.from_moments(validate_mean, validate_var)
        total = PhaseLatency.from_moments(
            execute_mean + order_mean + validate_mean,
            execute_var + order_var + validate_var)
        return ChannelPrediction(
            channel=demand.channel, rate=rate,
            endorsements=demand.endorsements, block_size=size,
            formation_window=window, execute=execute, order=order,
            validate=validate, total=total)
