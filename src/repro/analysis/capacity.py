"""Closed-form phase capacities from the cost model.

The pipeline saturates at the minimum of its stage capacities:

- **clients**: ``num_clients / (prep + collect + submit)`` CPU seconds;
- **execute**: under OR each transaction takes one endorsement, spread over
  the target peers; under AND every target peer endorses every transaction;
- **order**: OSN envelope handling (never binding in the paper's setup);
- **validate**: per block of B transactions the peer spends
  ``verify + B * vscc / workers + B * mvcc + commit`` seconds — VSCC cost
  grows with endorsements per transaction, which is the paper's reason the
  AND policy validates slower.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.workload import resolve_demands
from repro.chaincode.policy import EndorsementPolicy
from repro.common.config import TopologyConfig, WorkloadConfig
from repro.runtime.costs import CostModel


@dataclasses.dataclass(frozen=True)
class PhaseCapacities:
    """Saturation throughput (tx/s) of each pipeline stage."""

    client: float
    execute: float
    order: float
    validate: float

    @property
    def system(self) -> float:
        return min(self.client, self.execute, self.order, self.validate)

    @property
    def bottleneck(self) -> str:
        capacities = {
            "client": self.client,
            "execute": self.execute,
            "order": self.order,
            "validate": self.validate,
        }
        return min(capacities, key=capacities.get)


class CapacityModel:
    """Analytical throughput predictions for a deployment."""

    def __init__(self, costs: CostModel, batch_size: int = 100) -> None:
        self.costs = costs
        self.batch_size = batch_size

    def endorsements_per_tx(self, policy: EndorsementPolicy) -> int:
        """Endorsements a satisfying envelope carries (minimal plan)."""
        return policy.min_required()

    def client_capacity(self, num_clients: int) -> float:
        return num_clients * self.costs.client_capacity()

    def execute_capacity(self, policy: EndorsementPolicy,
                         num_peers: int) -> float:
        """Endorsement-stage capacity in transactions/s.

        The policy's targets are spread over ``num_peers`` deployed peers.
        Under OR, one endorsement per transaction is load-balanced across
        the targets; under AND, every target endorses every transaction, so
        adding peers does not add execute capacity.
        """
        targets = min(len(policy.principals()), num_peers)
        per_peer = self.costs.endorser_capacity()
        endorsements_per_tx = self.endorsements_per_tx(policy)
        spread = min(targets, num_peers)
        if endorsements_per_tx <= 0 or spread <= 0:
            return 0.0
        # Aggregate endorsement service rate over the targets, divided by
        # the endorsements each transaction consumes.
        return per_peer * spread / endorsements_per_tx

    def order_capacity(self) -> float:
        return self.costs.orderer_cores / self.costs.orderer_per_envelope_cpu

    def validate_capacity(self, policy: EndorsementPolicy) -> float:
        """Validate-stage capacity, accounting for the serial block path."""
        endorsements = self.endorsements_per_tx(policy)
        batch = self.batch_size
        vscc = (batch * self.costs.vscc_tx_cpu(endorsements)
                / min(self.costs.validator_workers, self.costs.peer_cores))
        serial = (self.costs.block_verify_cpu
                  + batch * self.costs.mvcc_per_tx_cpu
                  + self.costs.commit_per_block_io
                  + batch * self.costs.commit_per_tx_io)
        return batch / (vscc + serial)

    def capacities(self, policy: EndorsementPolicy, num_peers: int,
                   num_clients: int | None = None) -> PhaseCapacities:
        clients = num_clients if num_clients is not None else num_peers
        return PhaseCapacities(
            client=self.client_capacity(clients),
            execute=self.execute_capacity(policy, num_peers),
            order=self.order_capacity(),
            validate=self.validate_capacity(policy))


def deployment_capacities(
        topology: TopologyConfig, workload: WorkloadConfig,
        costs: CostModel | None = None,
        workload_kind: str = "unique") -> dict[str, PhaseCapacities]:
    """Per-channel phase capacities for a full deployment config.

    Resolves the workload the way the simulator does — classic
    round-robin clients, explicit per-channel mixes, or aggregated client
    populations — so each channel's client pool, endorsement policy, and
    endorsement count are the ones its traffic actually sees.  Capacities
    are per channel in isolation; cross-channel resource sharing is
    :func:`deployment_system_capacity`'s (and, in full, the stochastic
    phase model's) concern.
    """
    model = CapacityModel(costs if costs is not None else CostModel(),
                          batch_size=topology.orderer.batch_size)
    return {
        demand.channel: model.capacities(
            demand.policy, topology.num_endorsing_peers,
            num_clients=demand.clients)
        for demand in resolve_demands(topology, workload, workload_kind)}


def deployment_system_capacity(
        topology: TopologyConfig, workload: WorkloadConfig,
        costs: CostModel | None = None,
        workload_kind: str = "unique") -> PhaseCapacities:
    """Aggregate saturation rates with channel traffic shares held fixed.

    Per-channel stages (clients, the per-channel validate pipelines)
    saturate when the busiest channel's share does; shared stages pool:
    endorsing peers serve every channel, so execute capacity is the
    harmonic combination of the per-channel rates, and the ordering
    service handles the total envelope stream.  First-moment only — the
    stochastic phase model refines this with the shared peer CPU, disk,
    and state-DB stations.
    """
    demands = resolve_demands(topology, workload, workload_kind)
    model = CapacityModel(costs if costs is not None else CostModel(),
                          batch_size=topology.orderer.batch_size)
    total = sum(demand.rate for demand in demands)
    active = [demand for demand in demands if demand.rate > 0]
    if total <= 0 or not active:
        inf = math.inf
        return PhaseCapacities(client=inf, execute=inf,
                               order=model.order_capacity(), validate=inf)
    client = math.inf
    validate = math.inf
    execute_load = 0.0  # endorser-pool utilization per unit offered load
    for demand in active:
        share = demand.rate / total
        per_channel = model.capacities(
            demand.policy, topology.num_endorsing_peers,
            num_clients=demand.clients)
        client = min(client, per_channel.client / share)
        validate = min(validate, per_channel.validate / share)
        if per_channel.execute > 0:
            execute_load += share / per_channel.execute
    execute = 1.0 / execute_load if execute_load > 0 else math.inf
    return PhaseCapacities(client=client, execute=execute,
                           order=model.order_capacity(), validate=validate)
