"""Elementary queueing formulas used by the analytic phase models.

Beyond the original M/M/1 and M/M/c helpers, this module carries the
two-moment approximations the stochastic phase model is built on:
Pollaczek–Khinchine for M/G/1 waits and the Allen–Cunneen correction for
M/G/c, both parameterised by the service time's squared coefficient of
variation (SCV).
"""

from __future__ import annotations

import math


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time (excluding service) in an M/M/1 queue.

    Returns ``inf`` at or beyond saturation.
    """
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        return math.inf
    return rho / (service_rate - arrival_rate)


def mmc_erlang_c(arrival_rate: float, service_rate: float,
                 servers: int) -> float:
    """Erlang-C probability that an arrival must wait in M/M/c.

    Computed through the iterative Erlang-B recurrence
    ``B(k) = a B(k-1) / (k + a B(k-1))`` followed by the standard B-to-C
    conversion.  The recurrence works in ratios, so unlike the textbook
    ``a**c / c!`` sum it neither overflows nor cancels at large server
    counts — 100-peer scale-out topologies are routine inputs.
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    offered = arrival_rate / service_rate
    rho = offered / servers
    if rho >= 1:
        return 1.0
    if offered == 0:
        return 0.0
    blocking = 1.0  # Erlang-B with zero servers
    for k in range(1, servers + 1):
        blocking = offered * blocking / (k + offered * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


def mmc_wait(arrival_rate: float, service_rate: float,
             servers: int) -> float:
    """Mean waiting time (excluding service) in an M/M/c queue."""
    offered = arrival_rate / service_rate
    if offered / servers >= 1:
        return math.inf
    wait_probability = mmc_erlang_c(arrival_rate, service_rate, servers)
    return wait_probability / (servers * service_rate - arrival_rate)


def mg1_wait(arrival_rate: float, service_mean: float,
             service_scv: float = 0.0) -> float:
    """Mean M/G/1 wait (Pollaczek–Khinchine), from mean service and SCV.

    ``service_scv`` is Var[S] / E[S]^2: 0 for deterministic service, 1 for
    exponential.  Returns ``inf`` at or beyond saturation.
    """
    if service_mean <= 0:
        raise ValueError("service mean must be positive")
    if service_scv < 0:
        raise ValueError("service SCV must be >= 0")
    rho = arrival_rate * service_mean
    if rho >= 1:
        return math.inf
    return rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))


def mgc_wait(arrival_rate: float, service_mean: float,
             service_scv: float, servers: int) -> float:
    """Mean M/G/c wait via the Allen–Cunneen approximation.

    Scales the exact M/M/c wait by ``(1 + SCV) / 2`` (Poisson arrivals, so
    the arrival SCV term is 1).  Exact for c = 1 (reduces to
    Pollaczek–Khinchine) and for exponential service at any c.
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if service_mean <= 0:
        raise ValueError("service mean must be positive")
    if arrival_rate * service_mean / servers >= 1:
        return math.inf
    base = mmc_wait(arrival_rate, 1.0 / service_mean, servers)
    return base * (1.0 + service_scv) / 2.0
