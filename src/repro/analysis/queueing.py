"""Elementary queueing formulas used for latency sanity checks."""

from __future__ import annotations

import math


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time (excluding service) in an M/M/1 queue.

    Returns ``inf`` at or beyond saturation.
    """
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        return math.inf
    return rho / (service_rate - arrival_rate)


def mmc_erlang_c(arrival_rate: float, service_rate: float,
                 servers: int) -> float:
    """Erlang-C probability that an arrival must wait in M/M/c."""
    if servers < 1:
        raise ValueError("need at least one server")
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    offered = arrival_rate / service_rate
    rho = offered / servers
    if rho >= 1:
        return 1.0
    summation = sum(offered ** k / math.factorial(k)
                    for k in range(servers))
    tail = (offered ** servers
            / (math.factorial(servers) * (1 - rho)))
    return tail / (summation + tail)


def mmc_wait(arrival_rate: float, service_rate: float,
             servers: int) -> float:
    """Mean waiting time (excluding service) in an M/M/c queue."""
    offered = arrival_rate / service_rate
    if offered / servers >= 1:
        return math.inf
    wait_probability = mmc_erlang_c(arrival_rate, service_rate, servers)
    return wait_probability / (servers * service_rate - arrival_rate)
