"""Workload structure as the analytic models see it.

The simulator resolves a :class:`~repro.common.config.WorkloadConfig` into
concrete arrival streams three different ways — classic per-client
round-robin, explicit per-channel mixes, and aggregated client populations
(cohorts).  The analytic models must agree with that resolution exactly,
or predictions drift from the simulator for configuration reasons rather
than modelling ones.  This module derives, from the same config objects
the simulator consumes:

- per-channel aggregate arrival rates (tx/s);
- per-channel client (or cohort) process counts, which bound the client
  stage's service pool;
- the number of endorsements a satisfying envelope carries per channel.

Population mode reuses :func:`repro.client.population.plan_cohorts`, so
cohort rates match the simulator's planning code path by construction.
"""

from __future__ import annotations

import dataclasses

from repro.chaincode.policy import EndorsementPolicy, resolve_policy_spec
from repro.client.population import plan_cohorts
from repro.common.config import TopologyConfig, WorkloadConfig


@dataclasses.dataclass(frozen=True)
class ChannelDemand:
    """One channel's resolved offered load and endorsement plan."""

    channel: str
    #: Aggregate arrival rate on this channel (tx/s).
    rate: float
    #: Client (or cohort) processes generating this channel's load.
    clients: int
    #: Resolved endorsement policy for the channel.
    policy: EndorsementPolicy
    #: Transaction shape: "unique" fresh-key writes or "conflict" RMWs.
    workload: str = "unique"

    @property
    def endorsements(self) -> int:
        """Endorsements a satisfying envelope carries (minimal plan)."""
        return self.policy.min_required()

    @property
    def targets(self) -> int:
        """Endorsing peers the channel's proposals are spread across."""
        return len(self.policy.principals())


def resolve_demands(topology: TopologyConfig,
                    workload: WorkloadConfig,
                    workload_kind: str = "unique") -> list[ChannelDemand]:
    """Per-channel demands, mirroring the simulator's workload resolution.

    Rate priority matches :class:`~repro.fabric.network.FabricNetwork`:
    population ``user_rate``, then per-channel mixes, then an even split of
    ``arrival_rate`` implied by the clients' channel round-robin.
    """
    topology.validate(workload)
    channel_configs = [topology.channel] + list(topology.extra_channels)
    peer_names = [f"peer{i}"
                  for i in range(topology.num_endorsing_peers)]
    policies = {config.name: resolve_policy_spec(config.endorsement_policy,
                                                 peer_names)
                for config in channel_configs}
    names = [config.name for config in channel_configs]

    if workload.population is not None:
        specs = plan_cohorts(names, workload, workload=workload_kind)
        demands = []
        for name in names:
            on_channel = [spec for spec in specs if spec.channel == name]
            demands.append(ChannelDemand(
                channel=name,
                rate=sum(spec.rate for spec in on_channel),
                clients=len(on_channel),
                policy=policies[name],
                workload=on_channel[0].workload if on_channel
                else workload_kind))
        return demands

    num_clients = (workload.num_clients if workload.num_clients is not None
                   else topology.num_endorsing_peers)
    # Classic mode: client i is bound to channel i % C (network assembly),
    # so a channel's client group is the round-robin slice.
    group_sizes = {name: 0 for name in names}
    for index in range(num_clients):
        group_sizes[names[index % len(names)]] += 1

    if workload.per_channel is not None:
        return [ChannelDemand(
            channel=name,
            rate=workload.per_channel[name].rate,
            clients=group_sizes[name],
            policy=policies[name],
            workload=workload.per_channel[name].workload)
            for name in names]

    per_client = (workload.arrival_rate / num_clients if num_clients else 0.0)
    return [ChannelDemand(
        channel=name,
        rate=per_client * group_sizes[name],
        clients=group_sizes[name],
        policy=policies[name],
        workload=workload_kind)
        for name in names]


def offered_rate(demands: list[ChannelDemand]) -> float:
    """Total offered load across all channels (tx/s)."""
    return sum(demand.rate for demand in demands)
