"""Capacity planner: invert the phase model over a configuration grid.

The phase model answers "what does this deployment do at this load?" in
closed form; the planner runs that question backwards — *what peers ×
channels × batch configuration sustains a target throughput under a p95
latency bound?* — by sweeping a deployment grid and screening each
configuration with one utilization sweep (:meth:`PhaseModel
.peak_utilization`, microseconds) before paying for latency quantiles on
the survivors.  No simulation runs anywhere: a full plan over several
hundred configurations completes in well under a second, which is the
point — the planner is the interactive front end to the model, and the
simulator is the slow oracle you graduate to for the chosen config.

Preference order: fewest peers, then fewest channels (machines cost more
than channels), then lowest predicted p95 among the batch configurations
that fit.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.analysis.phase_model import PhaseModel
from repro.common.config import (
    ChannelConfig,
    OrdererConfig,
    StateDBConfig,
    TopologyConfig,
    WorkloadConfig,
)

__all__ = ["PlanOption", "CapacityPlan", "plan_capacity"]

PEER_GRID = (2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64)
CHANNEL_GRID = (1, 2, 4, 8)
BATCH_SIZE_GRID = (50, 100, 200, 500)
BATCH_TIMEOUT_GRID = (0.25, 0.5, 1.0, 2.0)

#: Keep the plan's peak station utilization at or below this: a config
#: "sustains" the target only with margin against the approximations.
DEFAULT_HEADROOM = 0.9


@dataclasses.dataclass(frozen=True)
class PlanOption:
    """One evaluated deployment configuration and its predictions."""

    peers: int
    channels: int
    batch_size: int
    batch_timeout: float
    clients: int
    peak_utilization: float
    p50: float
    p95: float
    #: Filled from the full saturation search for the chosen option;
    #: screening-only options estimate it from the utilization screen.
    capacity: float = math.inf
    bottleneck: str = ""

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class CapacityPlan:
    """The planner's answer: the chosen configuration plus context."""

    target_tps: float
    max_p95: float | None
    policy: str
    orderer_kind: str
    statedb_kind: str
    best: PlanOption | None
    #: Other batch configurations that also fit at the chosen scale.
    alternatives: list[PlanOption]
    #: The nearest miss when nothing fits (lowest peak utilization seen).
    closest: PlanOption | None
    evaluated: int

    @property
    def feasible(self) -> bool:
        return self.best is not None

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "target_tps": self.target_tps,
            "max_p95": self.max_p95,
            "policy": self.policy,
            "orderer_kind": self.orderer_kind,
            "statedb_kind": self.statedb_kind,
            "feasible": self.feasible,
            "evaluated": self.evaluated,
            "best": self.best.as_dict() if self.best else None,
            "alternatives": [option.as_dict()
                             for option in self.alternatives],
            "closest": self.closest.as_dict() if self.closest else None,
        }

    def render(self) -> str:
        bound = (f", p95 <= {self.max_p95:g} s" if self.max_p95 is not None
                 else "")
        lines = [f"capacity plan: {self.target_tps:g} tx/s{bound} "
                 f"({self.orderer_kind}, {self.policy}, "
                 f"{self.statedb_kind}; {self.evaluated} configs examined)"]
        if self.best is None:
            lines.append("  INFEASIBLE within the search grid")
            if self.closest is not None:
                option = self.closest
                lines.append(
                    f"  closest: {option.peers} peers x {option.channels} "
                    f"channel(s), batch {option.batch_size}/"
                    f"{option.batch_timeout:g}s -> peak utilization "
                    f"{option.peak_utilization:.2f}, p95 {option.p95:.3f} s")
            return "\n".join(lines)
        best = self.best
        lines.append(
            f"  best: {best.peers} peers x {best.channels} channel(s), "
            f"batch size {best.batch_size}, timeout "
            f"{best.batch_timeout:g} s, {best.clients} clients")
        lines.append(
            f"        capacity {best.capacity:.0f} tx/s "
            f"(bottleneck {best.bottleneck}), peak utilization "
            f"{best.peak_utilization:.2f}, p50 {best.p50:.3f} s, "
            f"p95 {best.p95:.3f} s")
        for option in self.alternatives:
            lines.append(
                f"  also fits: batch {option.batch_size}/"
                f"{option.batch_timeout:g}s -> p95 {option.p95:.3f} s")
        return "\n".join(lines)


def _plan_topology(peers: int, channels: int, policy: str,
                   orderer_kind: str, statedb_kind: str,
                   batch_size: int, batch_timeout: float) -> TopologyConfig:
    """The candidate deployment: ``channels`` uniform-policy channels."""
    if statedb_kind == "couchdb":
        # The representative tuned CouchDB deployment (Thakkar toggles on).
        statedb = StateDBConfig(kind="couchdb", cache=True, bulk=True)
    else:
        statedb = StateDBConfig(kind=statedb_kind)
    extra = [ChannelConfig(name=f"ch{index}", endorsement_policy=policy)
             for index in range(2, channels + 1)]
    return TopologyConfig(
        num_endorsing_peers=peers,
        channel=ChannelConfig(name="ch1", endorsement_policy=policy),
        extra_channels=extra,
        orderer=OrdererConfig(kind=orderer_kind,
                              num_osns=1 if orderer_kind == "solo" else 3,
                              batch_size=batch_size,
                              batch_timeout=batch_timeout),
        statedb=statedb)


def plan_capacity(target_tps: float,
                  max_p95: float | None = None,
                  policy: str = "OR(1..n)",
                  orderer_kind: str = "solo",
                  statedb_kind: str = "leveldb",
                  peer_grid: typing.Sequence[int] = PEER_GRID,
                  channel_grid: typing.Sequence[int] = CHANNEL_GRID,
                  batch_size_grid: typing.Sequence[int] = BATCH_SIZE_GRID,
                  batch_timeout_grid: typing.Sequence[float]
                  = BATCH_TIMEOUT_GRID,
                  headroom: float = DEFAULT_HEADROOM,
                  workload_kind: str = "unique") -> CapacityPlan:
    """Find the smallest deployment sustaining ``target_tps``.

    Scans (peers, channels) in increasing-cost order and stops at the
    first scale where some batch configuration fits; among those, lowest
    predicted p95 wins.  ``max_p95`` of ``None`` plans for throughput
    alone.  Closed-form throughout — no simulation.
    """
    if target_tps <= 0:
        raise ValueError("target_tps must be positive")
    # Enough client processes that the client stage is never the design
    # constraint (the planner sizes the fabric, not the load generator).
    clients = max(max(channel_grid), max(peer_grid),
                  math.ceil(target_tps / 40.0))
    workload = WorkloadConfig(arrival_rate=target_tps, duration=10.0,
                              num_clients=clients)
    evaluated = 0
    closest: PlanOption | None = None

    for peers in sorted(peer_grid):
        for channels in sorted(channel_grid):
            fits: list[tuple[PlanOption, PhaseModel]] = []
            for batch_size in batch_size_grid:
                for batch_timeout in batch_timeout_grid:
                    topology = _plan_topology(
                        peers, channels, policy, orderer_kind,
                        statedb_kind, batch_size, batch_timeout)
                    model = PhaseModel(topology, workload,
                                       workload_kind=workload_kind)
                    evaluated += 1
                    peak = model.peak_utilization()
                    if peak > headroom:
                        if closest is None or (
                                peak < closest.peak_utilization):
                            closest = PlanOption(
                                peers=peers, channels=channels,
                                batch_size=batch_size,
                                batch_timeout=batch_timeout,
                                clients=clients, peak_utilization=peak,
                                p50=math.inf, p95=math.inf)
                        continue
                    latency = model.predict(with_capacity=False).latency
                    option = PlanOption(
                        peers=peers, channels=channels,
                        batch_size=batch_size,
                        batch_timeout=batch_timeout, clients=clients,
                        peak_utilization=peak, p50=latency.p50,
                        p95=latency.p95)
                    if max_p95 is not None and latency.p95 > max_p95:
                        if closest is None or (
                                peak < closest.peak_utilization):
                            closest = option
                        continue
                    fits.append((option, model))
            if fits:
                fits.sort(key=lambda pair: pair[0].p95)
                best_option, best_model = fits[0]
                # The winner gets the full saturation search for its
                # capacity number and bottleneck attribution.
                full = best_model.predict()
                best_option = dataclasses.replace(
                    best_option, capacity=full.capacity,
                    bottleneck=full.bottleneck)
                return CapacityPlan(
                    target_tps=target_tps, max_p95=max_p95, policy=policy,
                    orderer_kind=orderer_kind, statedb_kind=statedb_kind,
                    best=best_option,
                    alternatives=[option for option, _model in fits[1:4]],
                    closest=None, evaluated=evaluated)
    return CapacityPlan(
        target_tps=target_tps, max_p95=max_p95, policy=policy,
        orderer_kind=orderer_kind, statedb_kind=statedb_kind,
        best=None, alternatives=[], closest=closest, evaluated=evaluated)
