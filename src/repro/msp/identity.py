"""Identities and roles within an MSP trust domain."""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.common.crypto import CryptoProvider, Signature

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.msp.ca import EnrollmentCertificate


class Role(enum.Enum):
    """The role a certificate grants within the network."""

    CLIENT = "client"
    PEER = "peer"
    ORDERER = "orderer"
    ADMIN = "admin"


@dataclasses.dataclass
class Identity:
    """An enrolled network participant able to sign messages."""

    name: str
    msp_id: str
    role: Role
    certificate: "EnrollmentCertificate"
    _crypto: CryptoProvider

    def sign(self, message: bytes) -> Signature:
        """Sign ``message`` with this identity's enrolment key."""
        return self._crypto.sign(self.name, message)

    def __repr__(self) -> str:
        return f"<Identity {self.name} ({self.role.value}@{self.msp_id})>"
