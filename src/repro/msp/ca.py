"""The Fabric Certificate Authority.

Issues enrolment certificates to clients, peers, and orderers.  Certificates
are bound to the CA's crypto provider: a certificate is valid iff the CA
recognises the subject, the certificate has not been revoked, and its
attestation signature verifies under the CA's key.
"""

from __future__ import annotations

import dataclasses

from repro.common.crypto import CryptoProvider, Signature
from repro.common.errors import ConfigurationError
from repro.msp.identity import Identity, Role


@dataclasses.dataclass(frozen=True)
class EnrollmentCertificate:
    """An attestation by the CA that ``subject`` holds ``role``."""

    subject: str
    msp_id: str
    role: Role
    serial: int
    attestation: Signature

    def bytes_attested(self) -> bytes:
        return (f"{self.subject}|{self.msp_id}|{self.role.value}|"
                f"{self.serial}").encode("utf-8")


class CertificateAuthority:
    """Identity management for one MSP (organisation) trust domain."""

    CA_SUBJECT = "@ca"

    #: Process-wide revocation counter, bumped alongside every per-CA
    #: :attr:`revocation_epoch`.  Verdict caches key on this (one integer
    #: read per validate) rather than summing per-CA epochs; a revoke in
    #: *any* trust domain conservatively invalidates every cache, which
    #: is always safe and costs nothing because revocations are rare
    #: (fault-injection scenarios only).
    global_revocation_epoch = 0

    def __init__(self, msp_id: str, root_secret: bytes | None = None) -> None:
        if not msp_id:
            raise ConfigurationError("MSP id must be non-empty")
        self.msp_id = msp_id
        secret = root_secret or f"root-secret:{msp_id}".encode("utf-8")
        self.crypto = CryptoProvider(secret)
        self._serial = 0
        self._issued: dict[str, EnrollmentCertificate] = {}
        self._revoked: set[str] = set()
        #: Bumped on every revocation; verdict caches keyed on trust state
        #: (see :attr:`repro.msp.msp.MSP.verdict_cache`) use it to
        #: invalidate without subscribing to individual CRL changes.
        self.revocation_epoch = 0

    def enroll(self, name: str, role: Role) -> Identity:
        """Issue an enrolment certificate and return the signed identity."""
        if name in self._issued:
            raise ConfigurationError(
                f"{name!r} is already enrolled with {self.msp_id}")
        self._serial += 1
        skeleton = EnrollmentCertificate(
            subject=name, msp_id=self.msp_id, role=role,
            serial=self._serial, attestation=None)  # type: ignore[arg-type]
        attestation = self.crypto.sign(self.CA_SUBJECT,
                                       skeleton.bytes_attested())
        certificate = dataclasses.replace(skeleton, attestation=attestation)
        self._issued[name] = certificate
        return Identity(name=name, msp_id=self.msp_id, role=role,
                        certificate=certificate, _crypto=self.crypto)

    def revoke(self, name: str) -> None:
        """Add ``name`` to the certificate revocation list."""
        if name not in self._issued:
            raise ConfigurationError(f"{name!r} was never enrolled")
        self._revoked.add(name)
        self.revocation_epoch += 1
        CertificateAuthority.global_revocation_epoch += 1

    def is_revoked(self, name: str) -> bool:
        return name in self._revoked

    def certificate_of(self, name: str) -> EnrollmentCertificate | None:
        return self._issued.get(name)

    def validate_certificate(self, certificate: EnrollmentCertificate) -> bool:
        """True iff the certificate was issued here and is not revoked."""
        if certificate.msp_id != self.msp_id:
            return False
        if certificate.subject in self._revoked:
            return False
        issued = self._issued.get(certificate.subject)
        if issued is None or issued.serial != certificate.serial:
            return False
        return self.crypto.verify(certificate.attestation,
                                  certificate.bytes_attested())
