"""Membership Service Provider: the Fabric CA and identity management.

The Fabric CA issues enrolment certificates to ordering service nodes, peers,
and clients (§II of the paper).  Peers consult their local MSP to check that
a proposal's submitter is authorized on the channel and that signatures are
valid — checks 3 and 4 of the endorsement flow.
"""

from repro.msp.ca import CertificateAuthority, EnrollmentCertificate
from repro.msp.identity import Identity, Role
from repro.msp.msp import MSP

__all__ = [
    "CertificateAuthority",
    "EnrollmentCertificate",
    "Identity",
    "MSP",
    "Role",
]
