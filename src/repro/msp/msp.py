"""The local MSP held by every node: verification and authorization.

Peers use their MSP for endorsement checks 3 and 4 (§II): "the signature is
valid" and "the submitter is authorized to transact on the channel".
"""

from __future__ import annotations

from repro.common.crypto import Signature
from repro.msp.ca import CertificateAuthority
from repro.msp.identity import Role


class MSP:
    """A node's view of one or more trust domains (CAs)."""

    def __init__(self, authorities: list[CertificateAuthority]) -> None:
        if not authorities:
            raise ValueError("an MSP needs at least one certificate authority")
        self._authorities = {ca.msp_id: ca for ca in authorities}
        # Channel name -> set of subjects authorized to write.
        self._channel_writers: dict[str, set[str]] = {}
        #: Shared memo for pure verification verdicts computed under this
        #: trust-domain view (every peer in a network holds the same MSP, so
        #: deduplicating here turns N-peer re-validation of one envelope into
        #: one computation).  Entries are keyed by object ids and pin strong
        #: references to their keys, so an id can never be recycled while its
        #: entry lives; they also record :attr:`revocation_epoch` at compute
        #: time, so a revocation invalidates every earlier verdict.
        self.verdict_cache: dict[tuple[int, int],
                                 tuple[object, object, object, int]] = {}

    @property
    def revocation_epoch(self) -> int:
        """Trust-state version the verdict cache keys on.

        The process-wide counter (one attribute read, no per-CA sum: this
        runs once per VSCC validate) moves at least as often as any of
        this MSP's own CAs, so cache entries can only be invalidated too
        eagerly, never kept too long.
        """
        return CertificateAuthority.global_revocation_epoch

    def authority(self, msp_id: str) -> CertificateAuthority | None:
        return self._authorities.get(msp_id)

    def verify_signature(self, signature: Signature, message: bytes,
                         msp_id: str) -> bool:
        """Verify ``signature`` under the named trust domain."""
        authority = self._authorities.get(msp_id)
        if authority is None:
            return False
        if authority.is_revoked(signature.signer):
            return False
        if authority.certificate_of(signature.signer) is None:
            return False
        return authority.crypto.verify(signature, message)

    def grant_channel_writer(self, channel: str, subject: str) -> None:
        """Authorize ``subject`` to submit transactions on ``channel``."""
        self._channel_writers.setdefault(channel, set()).add(subject)

    def is_channel_writer(self, channel: str, subject: str) -> bool:
        return subject in self._channel_writers.get(channel, set())

    def has_role(self, subject: str, msp_id: str, role: Role) -> bool:
        """True iff ``subject`` holds an unrevoked certificate with ``role``."""
        authority = self._authorities.get(msp_id)
        if authority is None or authority.is_revoked(subject):
            return False
        certificate = authority.certificate_of(subject)
        return certificate is not None and certificate.role is role
