"""The client node: the fabric-sdk-node equivalent.

Beyond the happy path (execute -> order -> wait for commit), the client
carries the robustness features a real SDK needs to survive faults:

- separate *endorsement* and *ordering* deadlines (historically one knob
  covered both, so a slow endorser ate the ordering budget);
- failover lists of anchor peers and orderers, rotated on failure;
- bounded resubmission with exponential backoff + deterministic jitter on
  retryable ordering failures ("ordering timeout" and the orderer's
  "no leader" nack during elections);
- commit-listener hygiene: a listener registered at the anchor peer is
  deregistered when an attempt fails, so peer listener maps stay bounded
  under sustained timeouts.
"""

from __future__ import annotations

import typing

from repro.chaincode.policy import EndorsementPolicy
from repro.common.errors import ConfigurationError
from repro.common.types import (
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
    ValidationCode,
)
from repro.msp.identity import Identity
from repro.runtime.context import NetworkContext
from repro.runtime.node import NodeBase
from repro.sim.network import Message

#: Orderer nack reasons worth retrying (transient consensus states).
RETRYABLE_NACK_REASONS = frozenset({"no leader"})


def _as_name_list(value: str | typing.Sequence[str], what: str) -> list[str]:
    names = [value] if isinstance(value, str) else list(value)
    if not names:
        raise ConfigurationError(f"client needs at least one {what}")
    return names


class ClientNode(NodeBase):
    """An asynchronous SDK client submitting transactions end to end."""

    def __init__(self, context: NetworkContext, identity: Identity,
                 channel: str, policy: EndorsementPolicy,
                 anchor_peer: str | typing.Sequence[str],
                 orderer: str | typing.Sequence[str],
                 ordering_timeout: float = 3.0,
                 endorsement_timeout: float = 3.0,
                 max_resubmits: int = 0,
                 resubmit_backoff: float = 0.25,
                 resubmit_jitter: float = 0.5,
                 cohort: str = "") -> None:
        super().__init__(context, identity.name,
                         cores=context.costs.client_threads)
        self.identity = identity
        self.channel = channel
        self.policy = policy
        #: Cohort tag stamped on every submitted transaction's
        #: :class:`~repro.metrics.collector.TxRecord` ("" outside
        #: aggregated-population mode).
        self.cohort = cohort
        #: Failover lists; index 0 is the preferred endpoint and failures
        #: rotate to the next entry.
        self.anchor_peers = _as_name_list(anchor_peer, "anchor peer")
        self.orderers = _as_name_list(orderer, "orderer")
        self.ordering_timeout = ordering_timeout
        self.endorsement_timeout = endorsement_timeout
        self.max_resubmits = max_resubmits
        self.resubmit_backoff = resubmit_backoff
        self.resubmit_jitter = resubmit_jitter
        self._anchor_index = 0
        self._orderer_index = 0
        self._nonce = 0
        self._or_counter = 0
        # tx_id -> event fired by the matching proposal_response/commit/nack.
        self._response_waiters: dict[str, typing.Any] = {}
        self._response_buffers: dict[str, list[ProposalResponse]] = {}
        self._response_needed: dict[str, int] = {}
        self._commit_waiters: dict[str, typing.Any] = {}
        self._nack_waiters: dict[str, typing.Any] = {}
        self.submitted = 0
        self.committed = 0
        self.rejected = 0
        self.resubmissions = 0
        self.on("proposal_response", self._handle_proposal_response)
        self.on("commit_event", self._handle_commit_event)
        self.on("broadcast_ack", self._handle_broadcast_ack)
        self.on("broadcast_nack", self._handle_broadcast_nack)

    # ------------------------------------------------------------------
    # Failover endpoints
    # ------------------------------------------------------------------

    @property
    def anchor_peer(self) -> str:
        """The current anchor peer (rotates on failed attempts)."""
        return self.anchor_peers[self._anchor_index % len(self.anchor_peers)]

    @property
    def orderer(self) -> str:
        """The current orderer endpoint (rotates on failed attempts)."""
        return self.orderers[self._orderer_index % len(self.orderers)]

    def _fail_over(self) -> None:
        """Rotate to the next orderer and anchor peer."""
        if len(self.orderers) > 1:
            self._orderer_index += 1
        if len(self.anchor_peers) > 1:
            self._anchor_index += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def invoke(self, chaincode: str, function: str,
               args: typing.Sequence[str], tx_size: int = 1) -> typing.Any:
        """Submit one transaction asynchronously; returns its process.

        The returned process resolves to ``(tx_id, outcome)`` where outcome
        is ``"committed"``, ``"invalid"`` (on-chain but flagged), or a
        rejection reason.
        """
        # Daemon + eager: the open-loop workload discards the handle (a
        # joiner that does yield it still works, see Simulation.process),
        # and starting at spawn keeps per-client FIFO order while skipping
        # the init pop.
        return self.sim.process(
            self._transaction_flow(chaincode, function, tuple(args),
                                   tx_size),
            daemon=True, eager=True)

    # ------------------------------------------------------------------
    # The transaction flow
    # ------------------------------------------------------------------

    def _transaction_flow(self, chaincode: str, function: str,
                          args: tuple[str, ...], tx_size: int):
        metrics = self.context.metrics
        self._nonce += 1
        nonce = self._nonce
        tx_id = Proposal.compute_tx_id(self.name, nonce)
        proposal = Proposal(tx_id=tx_id, channel=self.channel,
                            chaincode=chaincode, function=function,
                            args=args, creator=self.name, nonce=nonce,
                            tx_size=tx_size)
        metrics.tx_submitted(tx_id, cohort=self.cohort,
                             channel=self.channel)
        self.submitted += 1

        attempts_left = self.max_resubmits
        attempt = 0
        good: list[ProposalResponse] | None = None
        while True:
            # --- Execute phase -------------------------------------------
            if good is None:
                failure, good = yield from self._execute_phase(
                    proposal, tx_id)
                if good is None:
                    failure = typing.cast(str, failure)
                    if (failure == "endorsement timeout"
                            and attempts_left > 0):
                        attempts_left -= 1
                        attempt += 1
                        self._note_resubmit(tx_id)
                        yield from self._retry_backoff(attempt)
                        continue
                    metrics.tx_rejected(tx_id, failure)
                    self.rejected += 1
                    return tx_id, failure
                metrics.tx_endorsed(tx_id)

            # --- Order phase ---------------------------------------------
            outcome = yield from self._order_phase(
                tx_id, chaincode, good, tx_size, attempt)
            if outcome in ("committed", "invalid"):
                return tx_id, outcome
            retryable = (outcome == "ordering timeout"
                         or _nack_reason(outcome) in RETRYABLE_NACK_REASONS)
            if not retryable or attempts_left <= 0:
                metrics.tx_rejected(tx_id, outcome)
                self.rejected += 1
                return tx_id, outcome
            attempts_left -= 1
            attempt += 1
            self._note_resubmit(tx_id)
            self._fail_over()
            yield from self._retry_backoff(attempt)

    def _execute_phase(self, proposal: Proposal, tx_id: str):
        """One endorsement round; returns (failure, good_responses)."""
        with self.tracer.span("client.execute", category="execute",
                              node=self.name, tx_id=tx_id) as span:
            yield from self.cpu.use(self.costs.client_prep_cpu)
            if self.costs.sdk_base_latency > 0:
                yield self.sim.timeout(self.costs.sdk_base_latency)
            targets = sorted(self.policy.select_targets(self._choose))
            if not targets:
                span.annotate(outcome="no endorsers")
                return "no endorsers", None
            signature = self.identity.sign(proposal.bytes_to_sign())
            responses = yield from self._gather_endorsements(
                proposal, signature, targets)
            good = [r for r in responses if r.ok]
            failure = self._endorsement_failure(good, targets, responses)
            if failure is not None:
                span.annotate(outcome=failure)
                return failure, None
            return None, good

    def _order_phase(self, tx_id: str, chaincode: str,
                     good: list[ProposalResponse], tx_size: int,
                     attempt: int):
        """One broadcast attempt; returns the attempt's outcome string."""
        with self.tracer.span("client.order_wait", category="order",
                              node=self.name, tx_id=tx_id) as span:
            if attempt:
                span.annotate(attempt=attempt)
            yield from self.cpu.use(self.costs.client_submit_cpu)
            envelope = TransactionEnvelope(
                tx_id=tx_id, channel=self.channel, chaincode=chaincode,
                creator=self.name, rwset=good[0].rwset,
                endorsements=tuple(r.endorsement for r in good),
                response_bytes=good[0].response_bytes(), tx_size=tx_size,
                submitted_at=self.sim.now)
            commit_event = self.sim.event()
            nack_event = self.sim.event()
            self._commit_waiters[tx_id] = commit_event
            self._nack_waiters[tx_id] = nack_event
            anchor = self.anchor_peer
            span.annotate(anchor=anchor)
            self.send(anchor, "register_listener", {"tx_id": tx_id})
            self.send(self.orderer, "broadcast", envelope,
                      size=envelope.wire_size())
            self.context.metrics.tx_broadcast(tx_id)

            # --- Wait for commit, a nack, or the ordering timeout ----------
            deadline = self.sim.timeout(self.ordering_timeout)
            result = yield self.sim.any_of(
                [commit_event, nack_event, deadline])
            self._commit_waiters.pop(tx_id, None)
            self._nack_waiters.pop(tx_id, None)
            if commit_event in result:
                code: ValidationCode = commit_event.value
                if code is ValidationCode.VALID:
                    self.committed += 1
                    span.annotate(outcome="committed")
                    return "committed"
                span.annotate(outcome="invalid")
                return "invalid"
            # The attempt failed: withdraw the commit listener so the
            # anchor peer's listener map stays bounded.
            self.send(anchor, "deregister_listener", {"tx_id": tx_id})
            if nack_event in result:
                outcome = f"orderer nack: {nack_event.value}"
            else:
                outcome = "ordering timeout"
            span.annotate(outcome=outcome)
            return outcome

    def _note_resubmit(self, tx_id: str) -> None:
        self.resubmissions += 1
        self.context.metrics.tx_resubmitted(tx_id)

    def _retry_backoff(self, attempt: int):
        """Exponential backoff with deterministic per-client jitter."""
        base = self.resubmit_backoff * (2 ** (attempt - 1))
        delay = self.context.rng.jittered(
            f"client.retry.{self.name}", base, self.resubmit_jitter)
        if delay > 0:
            yield self.sim.timeout(delay)

    def _choose(self, options: int) -> int:
        """OR-branch chooser: round-robin across alternatives."""
        index = self._or_counter % options
        self._or_counter += 1
        return index

    def _gather_endorsements(self, proposal: Proposal, signature,
                             targets: list[str]):
        """Send the proposal to every target and collect the responses."""
        tx_id = proposal.tx_id
        gathered = self.sim.event()
        self._response_waiters[tx_id] = gathered
        self._response_buffers[tx_id] = []
        self._response_needed[tx_id] = len(targets)
        for target in targets:
            self.send(target, "proposal",
                      {"proposal": proposal, "signature": signature},
                      size=700 + proposal.tx_size)
        deadline = self.sim.timeout(self.endorsement_timeout)
        yield self.sim.any_of([gathered, deadline])
        responses = self._response_buffers.pop(tx_id, [])
        self._response_waiters.pop(tx_id, None)
        self._response_needed.pop(tx_id, None)
        # Collection cost: per-response CPU plus SDK pipeline latency.
        if responses:
            yield from self.cpu.use(
                self.costs.client_collect_cpu)
            extra = self.costs.sdk_per_endorsement_latency * len(responses)
            if extra > 0:
                yield self.sim.timeout(extra)
        return responses

    @staticmethod
    def _endorsement_failure(good: list[ProposalResponse],
                             targets: list[str],
                             all_responses: list[ProposalResponse]
                             ) -> str | None:
        if len(all_responses) < len(targets):
            return "endorsement timeout"
        if len(good) < len(targets):
            bad = next(r for r in all_responses if not r.ok)
            return f"endorsement failed: {bad.message}"
        reference = good[0].rwset.digest()
        if any(r.rwset.digest() != reference for r in good[1:]):
            return "endorsements disagree"
        return None

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def _handle_proposal_response(self, message: Message):
        response: ProposalResponse = message.payload
        buffer = self._response_buffers.get(response.tx_id)
        if buffer is None:
            return  # response after timeout; drop
        buffer.append(response)
        if len(buffer) >= self._response_needed[response.tx_id]:
            waiter = self._response_waiters.get(response.tx_id)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
        return
        yield  # pragma: no cover

    def _handle_commit_event(self, message: Message):
        tx_id = message.payload["tx_id"]
        code: ValidationCode = message.payload["code"]
        metrics = self.context.metrics
        metrics.tx_validated(tx_id, code)
        metrics.tx_committed(tx_id)
        waiter = self._commit_waiters.get(tx_id)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(code)
        return
        yield  # pragma: no cover

    def _handle_broadcast_ack(self, message: Message):
        return
        yield  # pragma: no cover

    def _handle_broadcast_nack(self, message: Message):
        """A nack fails the pending attempt fast (no 3 s timeout wait).

        The transaction flow decides whether the reason is retryable; a
        nack for an attempt no longer waiting is simply dropped.
        """
        waiter = self._nack_waiters.get(message.payload["tx_id"])
        if waiter is not None and not waiter.triggered:
            waiter.succeed(message.payload["reason"])
        return
        yield  # pragma: no cover


def _nack_reason(outcome: str) -> str:
    """The raw reason from an ``"orderer nack: <reason>"`` outcome."""
    prefix = "orderer nack: "
    return outcome[len(prefix):] if outcome.startswith(prefix) else ""
