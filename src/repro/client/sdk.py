"""The client node: the fabric-sdk-node equivalent."""

from __future__ import annotations

import typing

from repro.chaincode.policy import EndorsementPolicy
from repro.common.types import (
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
    ValidationCode,
)
from repro.msp.identity import Identity
from repro.runtime.context import NetworkContext
from repro.runtime.node import NodeBase
from repro.sim.network import Message


class ClientNode(NodeBase):
    """An asynchronous SDK client submitting transactions end to end."""

    def __init__(self, context: NetworkContext, identity: Identity,
                 channel: str, policy: EndorsementPolicy,
                 anchor_peer: str, orderer: str,
                 ordering_timeout: float = 3.0) -> None:
        super().__init__(context, identity.name,
                         cores=context.costs.client_threads)
        self.identity = identity
        self.channel = channel
        self.policy = policy
        self.anchor_peer = anchor_peer
        self.orderer = orderer
        self.ordering_timeout = ordering_timeout
        self._nonce = 0
        self._or_counter = 0
        # tx_id -> event fired by the matching proposal_response/commit.
        self._response_waiters: dict[str, typing.Any] = {}
        self._response_buffers: dict[str, list[ProposalResponse]] = {}
        self._response_needed: dict[str, int] = {}
        self._commit_waiters: dict[str, typing.Any] = {}
        self.submitted = 0
        self.committed = 0
        self.rejected = 0
        self.on("proposal_response", self._handle_proposal_response)
        self.on("commit_event", self._handle_commit_event)
        self.on("broadcast_ack", self._handle_broadcast_ack)
        self.on("broadcast_nack", self._handle_broadcast_nack)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def invoke(self, chaincode: str, function: str,
               args: typing.Sequence[str], tx_size: int = 1) -> typing.Any:
        """Submit one transaction asynchronously; returns its process.

        The returned process resolves to ``(tx_id, outcome)`` where outcome
        is ``"committed"``, ``"invalid"`` (on-chain but flagged), or a
        rejection reason.
        """
        return self.sim.process(
            self._transaction_flow(chaincode, function, tuple(args),
                                   tx_size))

    # ------------------------------------------------------------------
    # The transaction flow
    # ------------------------------------------------------------------

    def _transaction_flow(self, chaincode: str, function: str,
                          args: tuple[str, ...], tx_size: int):
        metrics = self.context.metrics
        self._nonce += 1
        nonce = self._nonce
        tx_id = Proposal.compute_tx_id(self.name, nonce)
        proposal = Proposal(tx_id=tx_id, channel=self.channel,
                            chaincode=chaincode, function=function,
                            args=args, creator=self.name, nonce=nonce,
                            tx_size=tx_size)
        metrics.tx_submitted(tx_id)
        self.submitted += 1

        # --- Execute phase -------------------------------------------------
        with self.tracer.span("client.execute", category="execute",
                              node=self.name, tx_id=tx_id) as span:
            yield from self.cpu.use(self.costs.client_prep_cpu)
            if self.costs.sdk_base_latency > 0:
                yield self.sim.timeout(self.costs.sdk_base_latency)
            targets = sorted(self.policy.select_targets(self._choose))
            if not targets:
                metrics.tx_rejected(tx_id, "no endorsers")
                self.rejected += 1
                span.annotate(outcome="no endorsers")
                return tx_id, "no endorsers"
            signature = self.identity.sign(proposal.bytes_to_sign())
            responses = yield from self._gather_endorsements(
                proposal, signature, targets)
            good = [r for r in responses if r.ok]
            failure = self._endorsement_failure(good, targets, responses)
            if failure is not None:
                metrics.tx_rejected(tx_id, failure)
                self.rejected += 1
                span.annotate(outcome=failure)
                return tx_id, failure
            metrics.tx_endorsed(tx_id)

        # --- Order phase ---------------------------------------------------
        with self.tracer.span("client.order_wait", category="order",
                              node=self.name, tx_id=tx_id) as span:
            yield from self.cpu.use(self.costs.client_submit_cpu)
            envelope = TransactionEnvelope(
                tx_id=tx_id, channel=self.channel, chaincode=chaincode,
                creator=self.name, rwset=good[0].rwset,
                endorsements=tuple(r.endorsement for r in good),
                response_bytes=good[0].response_bytes(), tx_size=tx_size,
                submitted_at=self.sim.now)
            commit_event = self.sim.event()
            self._commit_waiters[tx_id] = commit_event
            self.send(self.anchor_peer, "register_listener",
                      {"tx_id": tx_id})
            self.send(self.orderer, "broadcast", envelope,
                      size=envelope.wire_size())
            metrics.tx_broadcast(tx_id)

            # --- Wait for commit (or the 3-second ordering timeout) --------
            deadline = self.sim.timeout(self.ordering_timeout)
            result = yield self.sim.any_of([commit_event, deadline])
            self._commit_waiters.pop(tx_id, None)
            if commit_event not in result:
                metrics.tx_rejected(tx_id, "ordering timeout")
                self.rejected += 1
                span.annotate(outcome="ordering timeout")
                return tx_id, "ordering timeout"
            code: ValidationCode = commit_event.value
            if code is ValidationCode.VALID:
                self.committed += 1
                span.annotate(outcome="committed")
                return tx_id, "committed"
            span.annotate(outcome="invalid")
            return tx_id, "invalid"

    def _choose(self, options: int) -> int:
        """OR-branch chooser: round-robin across alternatives."""
        index = self._or_counter % options
        self._or_counter += 1
        return index

    def _gather_endorsements(self, proposal: Proposal, signature,
                             targets: list[str]):
        """Send the proposal to every target and collect the responses."""
        tx_id = proposal.tx_id
        gathered = self.sim.event()
        self._response_waiters[tx_id] = gathered
        self._response_buffers[tx_id] = []
        self._response_needed[tx_id] = len(targets)
        for target in targets:
            self.send(target, "proposal",
                      {"proposal": proposal, "signature": signature},
                      size=700 + proposal.tx_size)
        deadline = self.sim.timeout(self.ordering_timeout)
        yield self.sim.any_of([gathered, deadline])
        responses = self._response_buffers.pop(tx_id, [])
        self._response_waiters.pop(tx_id, None)
        self._response_needed.pop(tx_id, None)
        # Collection cost: per-response CPU plus SDK pipeline latency.
        if responses:
            yield from self.cpu.use(
                self.costs.client_collect_cpu)
            extra = self.costs.sdk_per_endorsement_latency * len(responses)
            if extra > 0:
                yield self.sim.timeout(extra)
        return responses

    @staticmethod
    def _endorsement_failure(good: list[ProposalResponse],
                             targets: list[str],
                             all_responses: list[ProposalResponse]
                             ) -> str | None:
        if len(all_responses) < len(targets):
            return "endorsement timeout"
        if len(good) < len(targets):
            bad = next(r for r in all_responses if not r.ok)
            return f"endorsement failed: {bad.message}"
        reference = good[0].rwset.digest()
        if any(r.rwset.digest() != reference for r in good[1:]):
            return "endorsements disagree"
        return None

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def _handle_proposal_response(self, message: Message):
        response: ProposalResponse = message.payload
        buffer = self._response_buffers.get(response.tx_id)
        if buffer is None:
            return  # response after timeout; drop
        buffer.append(response)
        if len(buffer) >= self._response_needed[response.tx_id]:
            waiter = self._response_waiters.get(response.tx_id)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
        return
        yield  # pragma: no cover

    def _handle_commit_event(self, message: Message):
        tx_id = message.payload["tx_id"]
        code: ValidationCode = message.payload["code"]
        metrics = self.context.metrics
        metrics.tx_validated(tx_id, code)
        metrics.tx_committed(tx_id)
        waiter = self._commit_waiters.get(tx_id)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(code)
        return
        yield  # pragma: no cover

    def _handle_broadcast_ack(self, message: Message):
        return
        yield  # pragma: no cover

    def _handle_broadcast_nack(self, message: Message):
        tx_id = message.payload["tx_id"]
        self.context.metrics.tx_rejected(
            tx_id, f"orderer nack: {message.payload['reason']}")
        return
        yield  # pragma: no cover
