"""Aggregated client populations: millions of users, O(cohorts) processes.

The classic :class:`~repro.client.workload.WorkloadGenerator` spawns one
kernel process (and one simulated SDK machine) per client, which caps a
practical run at a few hundred clients.  Characterising peer/channel
scalability the way Nguyen et al. (arXiv:2107.09886) do needs load that
*statistically* looks like millions of independent users without paying a
process per user.

The trick is arrival-stream aggregation: the superposition of N independent
Poisson(λ) arrival streams is a Poisson(Nλ) stream, so one *cohort* process
with a single exponential draw per arrival generates the exact open-loop
traffic of its whole user slice.  Each arrival is then attributed to a
virtual user drawn from the cohort's slice — uniformly, or Zipf-skewed so a
hot minority of users dominates — and that user id drives key-space access
(each user owns a home key in conflict mode, so user skew becomes key
contention).  The result: population size is a pure parameter.  A
1,000,000-user run spawns O(cohorts) kernel processes and costs the same as
any run at equal aggregate rate.

Accounting: every transaction is tagged with its cohort (and channel) on
the :class:`~repro.metrics.collector.TxRecord`, so
:meth:`~repro.metrics.collector.MetricsCollector.aggregate_by_cohort`
yields per-cohort PhaseMetrics after the run.  Each cohort draws from its
own seeded RNG stream (``population.<cohort>``), keeping runs reproducible
and cohorts statistically independent.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.client.sdk import ClientNode
from repro.client.workload import chaincode_for
from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError


@dataclasses.dataclass
class CohortSpec:
    """One cohort's slice of the population, before a client is attached.

    ``user_base`` is the first virtual user id of the slice; the cohort
    carries users ``[user_base, user_base + users)``.
    """

    name: str
    channel: str
    users: int
    user_base: int
    rate: float          # aggregate cohort arrival rate (tx/s); 0 = idle
    workload: str        # "unique" | "conflict"
    tx_size: int
    key_space: int
    skew: float

    @property
    def chaincode(self) -> str:
        return chaincode_for(self.workload)


def plan_cohorts(channel_names: typing.Sequence[str],
                 config: WorkloadConfig,
                 workload: str = "unique") -> list[CohortSpec]:
    """Partition the configured population into per-channel cohort specs.

    Users are split as evenly as possible across
    ``cohorts_per_channel * len(channel_names)`` cohorts (channel-major
    order, remainder to the earliest cohorts).  A cohort's rate comes from,
    in priority order: ``population.user_rate`` (rate = users x user_rate),
    the channel's :class:`~repro.common.config.ChannelWorkload` mix, or an
    even split of ``arrival_rate`` across channels.
    """
    population = config.population
    if population is None:
        raise ConfigurationError("plan_cohorts needs workload.population")
    population.validate()
    if not channel_names:
        raise ConfigurationError("population needs at least one channel")
    per_channel = population.cohorts_per_channel
    total_cohorts = per_channel * len(channel_names)
    base_users, remainder = divmod(population.num_users, total_cohorts)
    specs: list[CohortSpec] = []
    user_base = 0
    index = 0
    for channel in channel_names:
        mix = (config.per_channel or {}).get(channel)
        workload_kind = mix.workload if mix is not None else workload
        tx_size = (mix.tx_size if mix is not None
                   and mix.tx_size is not None else config.tx_size)
        key_space = (mix.key_space if mix is not None
                     and mix.key_space is not None else config.key_space)
        skew = (mix.skew if mix is not None and mix.skew is not None
                else config.read_write_conflict_skew)
        if mix is not None:
            channel_rate = mix.rate
        else:
            channel_rate = config.arrival_rate / len(channel_names)
        for position in range(per_channel):
            users = base_users + (1 if index < remainder else 0)
            if population.user_rate is not None:
                rate = users * population.user_rate
            else:
                rate = channel_rate / per_channel
            specs.append(CohortSpec(
                name=f"cohort{index}", channel=channel, users=users,
                user_base=user_base, rate=rate, workload=workload_kind,
                tx_size=tx_size, key_space=key_space, skew=skew))
            user_base += users
            index += 1
    return specs


@dataclasses.dataclass
class Cohort:
    """A planned cohort bound to its submitting client node."""

    spec: CohortSpec
    client: ClientNode
    transactions_started: int = 0

    @property
    def name(self) -> str:
        return self.spec.name


class ClientPopulation:
    """Open-loop load from an aggregated user population.

    Drop-in replacement for the
    :class:`~repro.client.workload.WorkloadGenerator` driver slot on
    :class:`~repro.fabric.network.FabricNetwork`: exposes the same
    ``start(at=...)`` / ``transactions_started`` surface, but generates
    superposed-Poisson arrivals for millions of virtual users from one
    kernel process per cohort.
    """

    def __init__(self, cohorts: list[Cohort],
                 config: WorkloadConfig) -> None:
        if not cohorts:
            raise ConfigurationError("population needs at least one cohort")
        config.validate()
        if config.population is None:
            raise ConfigurationError(
                "ClientPopulation needs workload.population to be set")
        self.cohorts = cohorts
        self.config = config
        self._processes: list[typing.Any] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def transactions_started(self) -> int:
        return sum(cohort.transactions_started for cohort in self.cohorts)

    @property
    def num_users(self) -> int:
        return sum(cohort.spec.users for cohort in self.cohorts)

    @property
    def cohort_names(self) -> list[str]:
        return [cohort.name for cohort in self.cohorts]

    def cohort_named(self, name: str) -> Cohort:
        for cohort in self.cohorts:
            if cohort.name == name:
                return cohort
        raise ConfigurationError(f"no cohort named {name!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Launch one arrival process per non-idle cohort."""
        for cohort in self.cohorts:
            if cohort.spec.rate <= 0 or cohort.spec.users <= 0:
                continue  # idle cohort: no arrival process at all
            sim = cohort.client.sim
            self._processes.append(sim.process(
                self._cohort_loop(cohort, at)))

    def _cohort_loop(self, cohort: Cohort, start_at: float):
        """Superposed-Poisson arrivals for one cohort's user slice."""
        spec = cohort.spec
        client = cohort.client
        sim = client.sim
        rng = client.context.rng.stream(f"population.{spec.name}")
        if start_at > sim.now:
            yield sim.timeout(max(0.0, start_at - sim.now))
        end_time = start_at + self.config.duration
        sequence = 0
        while True:
            # Exponential inter-arrival of the superposed stream; drawing
            # *before* each arrival keeps the process memoryless from the
            # start (no deterministic arrival spike at t=start_at).
            yield sim.timeout(rng.expovariate(spec.rate))
            if sim.now >= end_time:
                return
            user = spec.user_base + self._pick_user(spec, rng)
            function, args = self._next_call(spec, user, rng, sequence)
            client.invoke(spec.chaincode, function, args,
                          tx_size=spec.tx_size)
            cohort.transactions_started += 1
            sequence += 1

    @staticmethod
    def _pick_user(spec: CohortSpec, rng) -> int:
        """Draw the virtual user (cohort-relative) behind one arrival."""
        if spec.skew > 0:
            # Zipf-like via inverse-power transform: a hot minority of
            # users generates most of the traffic.
            u = max(rng.random(), 1e-9)
            return int(spec.users * (u ** (1.0 + spec.skew))) % spec.users
        return rng.randrange(spec.users)

    @staticmethod
    def _next_call(spec: CohortSpec, user: int, rng,
                   sequence: int) -> tuple[str, list[str]]:
        if spec.workload == "unique":
            key = f"{spec.name}-u{user}-k{sequence}"
            return "write", [key, "x" * max(1, spec.tx_size)]
        # Conflict mode: the user's home key inside the bounded key space,
        # so user-level skew turns directly into key contention.
        key_index = user % spec.key_space
        return "update", [f"acct{key_index}", f"u{user}-{sequence}"]
