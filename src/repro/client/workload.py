"""Open-loop workload generation across multiple clients (§IV.A).

The aggregate arrival rate λ is split evenly across the client processes
(Fig. 1's per-peer fractions).  Arrivals are open-loop: a new transaction is
invoked on schedule whether or not earlier ones have completed, matching the
paper's asynchronous invocation.  Supported workloads:

- ``unique``  — every transaction writes a fresh key (the paper's 1-byte
  benchmark transaction; no read-write conflicts);
- ``conflict`` — read-modify-write over a shared key space with optional
  Zipf-like skew, producing MVCC invalidations (the §V money-transfer-style
  scenario).
"""

from __future__ import annotations

import typing

from repro.client.sdk import ClientNode
from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError


class WorkloadGenerator:
    """Drives a set of clients at an aggregate arrival rate."""

    def __init__(self, clients: list[ClientNode], config: WorkloadConfig,
                 chaincode: str = "noop", workload: str = "unique") -> None:
        if not clients:
            raise ConfigurationError("workload needs at least one client")
        config.validate()
        if workload not in ("unique", "conflict"):
            raise ConfigurationError(f"unknown workload {workload!r}")
        self.clients = clients
        self.config = config
        self.chaincode = chaincode
        self.workload = workload
        self.transactions_started = 0
        self._processes: list[typing.Any] = []

    def start(self, at: float = 0.0) -> None:
        """Launch one open-loop arrival process per client."""
        sim = self.clients[0].sim
        per_client_rate = self.config.arrival_rate / len(self.clients)
        for index, client in enumerate(self.clients):
            self._processes.append(sim.process(
                self._arrival_loop(client, index, per_client_rate, at)))

    def _arrival_loop(self, client: ClientNode, index: int, rate: float,
                      start_at: float):
        sim = client.sim
        rng = client.context.rng.stream(f"workload.{client.name}")
        if start_at > sim.now:
            yield sim.timeout(max(0.0, start_at - sim.now))
        interval = 1.0 / rate
        end_time = start_at + self.config.duration
        # Stagger client start phases so aggregate arrivals are smooth.
        yield sim.timeout(interval * index / len(self.clients))
        sequence = 0
        while sim.now < end_time:
            function, args = self._next_call(client, rng, sequence)
            client.invoke(self.chaincode, function, args,
                          tx_size=self.config.tx_size)
            self.transactions_started += 1
            sequence += 1
            if self.config.arrival_process == "poisson":
                yield sim.timeout(rng.expovariate(rate))
            else:
                yield sim.timeout(interval)

    def _next_call(self, client: ClientNode, rng, sequence: int
                   ) -> tuple[str, list[str]]:
        if self.workload == "unique":
            key = f"{client.name}-k{sequence}"
            return "write", [key, "x" * max(1, self.config.tx_size)]
        # Conflicting read-modify-write over a bounded key space.
        key_space = self.config.key_space
        skew = self.config.read_write_conflict_skew
        if skew > 0:
            # Zipf-like via inverse-power transform of a uniform draw.
            u = max(rng.random(), 1e-9)
            key_index = int(key_space * (u ** (1.0 + skew))) % key_space
        else:
            key_index = rng.randrange(key_space)
        value = f"{client.name}-{sequence}"
        return "update", [f"acct{key_index}", value]
