"""Open-loop workload generation across multiple clients (§IV.A).

The aggregate arrival rate λ is split evenly across the client processes
(Fig. 1's per-peer fractions).  Arrivals are open-loop: a new transaction is
invoked on schedule whether or not earlier ones have completed, matching the
paper's asynchronous invocation.  Supported workloads:

- ``unique``  — every transaction writes a fresh key (the paper's 1-byte
  benchmark transaction; no read-write conflicts);
- ``conflict`` — read-modify-write over a shared key space with optional
  Zipf-like skew, producing MVCC invalidations (the §V money-transfer-style
  scenario).

With :attr:`~repro.common.config.WorkloadConfig.per_channel` mixes, the
clients are grouped by the channel they are bound to and each channel runs
its own rate and transaction shape; a rate of 0 keeps a channel idle (a
valid configuration — e.g. a standby channel that only receives config
blocks).  A zero aggregate rate likewise produces a valid idle workload
instead of a ``ZeroDivisionError``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.client.sdk import ClientNode
from repro.common.config import ChannelWorkload, WorkloadConfig
from repro.common.errors import ConfigurationError


def chaincode_for(workload: str) -> str:
    """The chaincode each workload shape drives."""
    return "noop" if workload == "unique" else "kvstore"


@dataclasses.dataclass
class _ClientPlan:
    """One client's slice of the offered load."""

    client: ClientNode
    index: int          # stagger index within the sharing group
    group_size: int     # clients sharing the same rate pool
    rate: float         # this client's arrival rate (tx/s)
    workload: str       # "unique" | "conflict"
    chaincode: str
    tx_size: int
    key_space: int
    skew: float


class WorkloadGenerator:
    """Drives a set of clients at an aggregate arrival rate."""

    def __init__(self, clients: list[ClientNode], config: WorkloadConfig,
                 chaincode: str = "noop", workload: str = "unique") -> None:
        if not clients:
            raise ConfigurationError(
                "workload needs at least one client (num_clients=0 "
                "builds no load generators; omit num_clients for one "
                "client per endorsing peer)")
        config.validate()
        if workload not in ("unique", "conflict"):
            raise ConfigurationError(f"unknown workload {workload!r}")
        self.clients = clients
        self.config = config
        self.chaincode = chaincode
        self.workload = workload
        self.transactions_started = 0
        self._processes: list[typing.Any] = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plans(self) -> list[_ClientPlan]:
        """Per-client load plans; empty for a fully idle workload."""
        if self.config.per_channel is None:
            return self._uniform_plans()
        return self._per_channel_plans()

    def _uniform_plans(self) -> list[_ClientPlan]:
        rate = self.config.arrival_rate
        if rate == 0:
            return []  # a valid idle workload: no arrival processes
        per_client = rate / len(self.clients)
        return [
            _ClientPlan(client=client, index=index,
                        group_size=len(self.clients), rate=per_client,
                        workload=self.workload, chaincode=self.chaincode,
                        tx_size=self.config.tx_size,
                        key_space=self.config.key_space,
                        skew=self.config.read_write_conflict_skew)
            for index, client in enumerate(self.clients)]

    def _per_channel_plans(self) -> list[_ClientPlan]:
        per_channel = typing.cast("dict[str, ChannelWorkload]",
                                  self.config.per_channel)
        groups: dict[str, list[ClientNode]] = {}
        for client in self.clients:
            groups.setdefault(client.channel, []).append(client)
        plans: list[_ClientPlan] = []
        for channel, mix in per_channel.items():
            group = groups.get(channel, [])
            if mix.rate == 0:
                continue  # deliberately idle channel
            if not group:
                raise ConfigurationError(
                    f"channel {channel!r} has rate {mix.rate:g} tx/s but "
                    "no client is bound to it; raise num_clients so the "
                    "round-robin reaches it (or set its rate to 0)")
            per_client = mix.rate / len(group)
            for index, client in enumerate(group):
                plans.append(_ClientPlan(
                    client=client, index=index, group_size=len(group),
                    rate=per_client, workload=mix.workload,
                    chaincode=chaincode_for(mix.workload),
                    tx_size=(mix.tx_size if mix.tx_size is not None
                             else self.config.tx_size),
                    key_space=(mix.key_space if mix.key_space is not None
                               else self.config.key_space),
                    skew=(mix.skew if mix.skew is not None
                          else self.config.read_write_conflict_skew)))
        return plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Launch one open-loop arrival process per loaded client."""
        sim = self.clients[0].sim
        for plan in self._plans():
            self._processes.append(sim.process(
                self._arrival_loop(plan, at)))

    def _arrival_loop(self, plan: _ClientPlan, start_at: float):
        client = plan.client
        sim = client.sim
        registry = client.context.rng
        stream_name = f"workload.{client.name}"
        poisson = self.config.arrival_process == "poisson"
        # Vectorised arrivals: a "unique" workload never draws in
        # _next_call, so the stream's only consumer is the poisson
        # inter-arrival draw — single-signature, safe to batch.  Conflict
        # workloads interleave key-pick draws on the same stream and must
        # stay sequential (the sampler's read-ahead would reorder them).
        if poisson and plan.workload == "unique":
            sampler = registry.sampler(stream_name)
            rng = None
        else:
            sampler = None
            rng = registry.stream(stream_name)
        if start_at > sim.now:
            yield sim.timeout(max(0.0, start_at - sim.now))
        interval = 1.0 / plan.rate
        end_time = start_at + self.config.duration
        # Stagger client start phases so aggregate arrivals are smooth.
        yield sim.timeout(interval * plan.index / plan.group_size)
        sequence = 0
        while sim.now < end_time:
            function, args = self._next_call(plan, rng, sequence)
            client.invoke(plan.chaincode, function, args,
                          tx_size=plan.tx_size)
            self.transactions_started += 1
            sequence += 1
            if sampler is not None:
                yield sim.timeout(sampler.expovariate(plan.rate))
            elif poisson:
                yield sim.timeout(rng.expovariate(plan.rate))
            else:
                yield sim.timeout(interval)

    def _next_call(self, plan: _ClientPlan, rng, sequence: int
                   ) -> tuple[str, list[str]]:
        client = plan.client
        if plan.workload == "unique":
            key = f"{client.name}-k{sequence}"
            return "write", [key, "x" * max(1, plan.tx_size)]
        # Conflicting read-modify-write over a bounded key space.
        key_space = plan.key_space
        skew = plan.skew
        if skew > 0:
            # Zipf-like via inverse-power transform of a uniform draw.
            u = max(rng.random(), 1e-9)
            key_index = int(key_space * (u ** (1.0 + skew))) % key_space
        else:
            key_index = rng.randrange(key_space)
        value = f"{client.name}-{sequence}"
        return "update", [f"acct{key_index}", value]
