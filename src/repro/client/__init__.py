"""Client SDK and workload generation (the paper's §IV.A design).

The client mirrors fabric-sdk-node driving Fabric asynchronously: build and
sign a proposal, send it to the peers selected by the endorsement policy,
collect and check the responses, assemble the envelope, broadcast it to an
ordering service node, and wait for the commit event from the client's
anchor peer — rejecting the transaction if the ordering response does not
arrive within 3 seconds.

The workload generator follows the paper's bottleneck-avoidance principles:
several client processes run simultaneously (one per endorsing peer, each
receiving a fraction of the aggregate arrival rate, as in Fig. 1),
transactions are invoked asynchronously without waiting for previous
responses, and each client issues many transactions (MSP setup is paid once).
"""

from repro.client.population import ClientPopulation, Cohort, plan_cohorts
from repro.client.sdk import ClientNode
from repro.client.workload import WorkloadGenerator

__all__ = ["ClientNode", "ClientPopulation", "Cohort", "WorkloadGenerator",
           "plan_cohorts"]
