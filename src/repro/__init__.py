"""repro: a protocol-complete simulation of Hyperledger Fabric v1.4.3,
reproducing "Performance Characterization and Bottleneck Analysis of
Hyperledger Fabric" (Wang & Chu, ICDCS 2020).

Quickstart::

    from repro import TopologyConfig, WorkloadConfig, run_experiment

    topology = TopologyConfig()              # 10 endorsing peers, solo, OR
    workload = WorkloadConfig(arrival_rate=150, duration=20)
    metrics = run_experiment(topology, workload)
    print(metrics.overall_throughput, metrics.overall_latency)

Package map:

- :mod:`repro.sim` — discrete-event kernel (processes, resources, network).
- :mod:`repro.msp` — Fabric CA, identities, signature verification.
- :mod:`repro.ledger` — blocks, world state, MVCC versions, history.
- :mod:`repro.chaincode` — contracts, rw-set stub, endorsement policies.
- :mod:`repro.peer` — endorsement and the validate/commit pipeline.
- :mod:`repro.orderer` — Solo, Kafka (+ ZooKeeper), and Raft services.
- :mod:`repro.client` — SDK flow and open-loop workload generation.
- :mod:`repro.fabric` — network assembly and experiment execution.
- :mod:`repro.metrics` — the paper's throughput/latency/block-time metrics.
- :mod:`repro.analysis` — closed-form capacity model cross-checks.
- :mod:`repro.experiments` — regeneration of every figure and table.
"""

from repro.common.config import (
    ChannelConfig,
    OrdererConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.fabric.network import FabricNetwork
from repro.fabric.run import run_experiment
from repro.metrics.collector import PhaseMetrics
from repro.runtime.costs import CostModel

__version__ = "1.0.0"

__all__ = [
    "ChannelConfig",
    "CostModel",
    "FabricNetwork",
    "OrdererConfig",
    "PhaseMetrics",
    "TopologyConfig",
    "WorkloadConfig",
    "run_experiment",
    "__version__",
]
