"""The validate phase: VSCC endorsement-policy checks, MVCC, and commit.

This is the paper's bottleneck, and the pipeline mirrors Fabric 1.4:

1. verify the orderer's signature on the block;
2. VSCC per transaction — verify every endorsement signature and evaluate
   the endorsement policy.  Transactions within a block are checked by a
   bounded pool of validator workers in parallel; the CPU cost grows with
   the number of endorsements, which is why AND policies validate slower
   than OR;
3. MVCC — a *serial* scan deciding read-conflict validity in block order
   (serial because each decision depends on the writes of earlier valid
   transactions);
4. commit — append the block, apply valid write sets (disk I/O), and emit
   commit events.
"""

from __future__ import annotations

import typing

from repro.chaincode.policy import EndorsementPolicy
from repro.chaincode.system import VSCC
from repro.common.types import Block, TransactionEnvelope, ValidationCode
from repro.ledger.ledger import Ledger
from repro.sim.core import Process
from repro.sim.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.peer.peer import PeerNode


def check_mvcc(ledger: Ledger, block: Block,
               flags: list[ValidationCode]) -> list[ValidationCode]:
    """Serial MVCC validation of ``block`` against ``ledger``'s state.

    ``flags`` carries the VSCC verdicts; only VSCC-valid transactions are
    checked.  A transaction is invalidated if any key it read has a version
    different from the current state version, or was written by an earlier
    valid transaction in the same block, or if its tx id duplicates a
    committed transaction (§II: MVCC prevents double-spending and replays).
    Returns the final per-transaction flags.
    """
    final_flags: list[ValidationCode] = []
    updated_in_block: set[str] = set()
    seen_tx_ids: set[str] = set()
    for envelope, flag in zip(block.transactions, flags):
        if flag is not ValidationCode.VALID:
            final_flags.append(flag)
            continue
        verdict = _mvcc_verdict(ledger, envelope, updated_in_block,
                                seen_tx_ids)
        final_flags.append(verdict)
        seen_tx_ids.add(envelope.tx_id)
        if verdict is ValidationCode.VALID:
            updated_in_block.update(envelope.rwset.write_keys)
    return final_flags


def _mvcc_verdict(ledger: Ledger, envelope: TransactionEnvelope,
                  updated_in_block: set[str],
                  seen_tx_ids: set[str]) -> ValidationCode:
    if (envelope.tx_id in seen_tx_ids
            or ledger.has_transaction(envelope.tx_id)):
        return ValidationCode.DUPLICATE_TXID
    for read in envelope.rwset.reads:
        if read.key in updated_in_block:
            return ValidationCode.MVCC_READ_CONFLICT
        if ledger.state.get_version(read.key) != read.version:
            return ValidationCode.MVCC_READ_CONFLICT
    return ValidationCode.VALID


class BlockValidator:
    """Per-(peer, channel) validation pipeline with in-order commit."""

    #: Seconds a height gap may persist before re-requesting the block.
    REDELIVER_TIMEOUT = 1.0
    #: Re-request attempts per gap before giving up (bounds the event loop
    #: when the deliver source is permanently gone).
    MAX_REDELIVER_ATTEMPTS = 30

    def __init__(self, peer: "PeerNode", policy: EndorsementPolicy,
                 ledger: Ledger) -> None:
        self._peer = peer
        self.policy = policy
        self.ledger = ledger
        self._vscc = VSCC(peer.msp)
        self._workers = Resource(
            peer.sim, capacity=peer.costs.validator_workers,
            name=f"{peer.name}.{ledger.channel}.validator.workers")
        # Blocks must commit in order; out-of-order arrivals wait here.
        self._pending: dict[int, Block] = {}
        self._committing = False
        self._gap_epoch = 0
        self.blocks_validated = 0
        self.blocks_dropped = 0
        self.redelivery_requests = 0
        self.txs_valid = 0
        self.txs_invalid = 0

    @property
    def backlog(self) -> int:
        return len(self._pending)

    @property
    def workers(self) -> Resource:
        """The VSCC worker pool (observability attachment)."""
        return self._workers

    def submit_block(self, block: Block) -> None:
        """Accept a block from the deliver/gossip path (idempotent)."""
        if block.number < self.ledger.height:
            return  # duplicate of an already-committed block
        if block.number in self._pending:
            return
        self._pending[block.number] = block
        if not self._committing:
            self._peer.sim.process(self._drain(), daemon=True)

    def _drain(self):
        self._committing = True
        try:
            while self.ledger.height in self._pending:
                block = self._pending.pop(self.ledger.height)
                yield from self._validate_and_commit(block)
        finally:
            self._committing = False
            self._watch_gap()

    # ------------------------------------------------------------------
    # Drop recovery
    # ------------------------------------------------------------------

    def _watch_gap(self) -> None:
        """Arm a watcher when pending blocks are stuck ahead of a gap.

        A block can go missing from the deliver stream (dropped in the
        network while the peer or link was down, or discarded as forged);
        later blocks then queue in ``_pending`` forever because commits are
        strictly in order.  The watcher re-requests the missing height from
        the deliver path after :attr:`REDELIVER_TIMEOUT` and re-arms while
        the gap persists.
        """
        self._gap_epoch += 1
        if not self._pending or self._committing:
            return
        if self.ledger.height in self._pending:
            return  # drain is about to pick it up
        if self._peer.deliver_source is None:
            return  # nowhere to re-request from (gossip-only peer)
        self._peer.sim.process(
            self._gap_watcher(self._gap_epoch, self.ledger.height, 0))

    def _gap_watcher(self, epoch: int, height: int, attempts: int):
        yield self._peer.sim.timeout(self.REDELIVER_TIMEOUT)
        if epoch != self._gap_epoch or self._committing:
            return  # progress was made (or another watcher armed)
        if self.ledger.height != height or not self._pending:
            return
        if height in self._pending:
            return
        if attempts >= self.MAX_REDELIVER_ATTEMPTS:
            return
        self.redelivery_requests += 1
        self._peer.request_redelivery(self.ledger.channel, height)
        # Re-arm: keep asking until the gap closes (the deliver source
        # itself may still be electing or recovering).
        self._gap_epoch += 1
        self._peer.sim.process(
            self._gap_watcher(self._gap_epoch, height, attempts + 1))

    def _validate_and_commit(self, block: Block):
        # The serial sections (signature check, MVCC, commit) belong to the
        # committer, which is accounted as occupying one validator worker:
        # blocks drain strictly serially, so the slot is always free at
        # those points and the accounting adds zero simulated time, but the
        # pool's utilization then measures the busy fraction of the whole
        # validate pipeline instead of just its parallel VSCC section.
        peer = self._peer
        tracer = peer.tracer
        with tracer.span("validate.block", category="validate",
                         node=peer.name) as span:
            span.annotate(block=block.number, channel=block.channel,
                          txs=len(block.transactions))
            # 1. Orderer signature on the block header.
            committer = self._workers.request()
            try:
                # The grant wait sits inside the try: an interrupt at
                # this yield must still hand the (queued or granted)
                # slot back, or the worker pool shrinks for good.
                yield committer
                yield from peer.cpu.use(peer.costs.block_verify_cpu)
            finally:
                self._workers.release(committer)
            signature = block.metadata.signature
            if signature is None or not peer.msp.verify_signature(
                    signature, block.header_bytes(), peer.identity.msp_id):
                # Forged block: drop it entirely.  The height stays put, so
                # ask the deliver path to resend the genuine block at this
                # number — otherwise every later block wedges in _pending.
                span.annotate(outcome="forged")
                self.blocks_dropped += 1
                if peer.deliver_source is not None:
                    self.redelivery_requests += 1
                    peer.request_redelivery(block.channel, block.number)
                return
            # 2. VSCC in parallel across the worker pool (the committer
            #    slot is released so every worker can serve VSCC jobs).
            flags: list[ValidationCode | None] = (
                [None] * len(block.transactions))
            # Eager spawn: each job claims its worker slot at spawn, in
            # list order — the same FIFO order the init pops would give.
            sim = peer.sim
            jobs = [Process(sim, self._vscc_one(envelope, flags, index),
                            eager=True)
                    for index, envelope in enumerate(block.transactions)]
            if jobs:
                yield peer.sim.all_of(jobs)
            vscc_flags = typing.cast("list[ValidationCode]", flags)
            backend = self.ledger.state
            read_cost = 0.0
            committer = self._workers.request()
            try:
                yield committer
                # 3. Serial MVCC in block order.  With bulk reads enabled,
                #    the whole read set is prefetched in one backend round
                #    trip; otherwise each get_version is a point read.
                #    Backend costs are drained immediately after each
                #    yield-free accrual section (see StateBackend docs).
                if backend.bulk:
                    backend.bulk_get(
                        key
                        for envelope, flag in zip(block.transactions,
                                                  vscc_flags)
                        if flag is ValidationCode.VALID
                        for key in envelope.rwset.read_keys)
                    read_cost += backend.drain_cost()
                with tracer.span("validate.mvcc", category="validate",
                                 node=peer.name):
                    if block.transactions:
                        yield from peer.cpu.use(
                            peer.costs.mvcc_per_tx_cpu
                            * len(block.transactions))
                    final_flags = check_mvcc(self.ledger, block, vscc_flags)
                    read_cost += backend.drain_cost()
                block.metadata.validation_flags = final_flags
                # 4a. Commit: block-store append (disk).
                with tracer.span("validate.commit", category="validate",
                                 node=peer.name):
                    yield from peer.disk.use(peer.costs.commit_per_block_io)
            finally:
                self._workers.release(committer)
            # 4b. State-database update: the block's valid write sets go to
            #     the backend as one commit batch; its cost (plus the MVCC
            #     read cost) is charged on the serial statedb resource.
            #     Blocks drain strictly serially, so charging outside the
            #     worker slot keeps ordering while letting bottleneck
            #     attribution separate state-DB time from VSCC time.
            yield from peer.charge_statedb(read_cost, "read")
            self.ledger.commit_block(block)
            yield from peer.charge_statedb(backend.drain_cost(), "commit")
            self.blocks_validated += 1
            for envelope, flag in zip(block.transactions, final_flags):
                if flag is ValidationCode.VALID:
                    self.txs_valid += 1
                else:
                    self.txs_invalid += 1
                peer.notify_commit(envelope.tx_id, flag)
            interval = peer.statedb_config.snapshot_interval
            if interval > 0 and self.ledger.height % interval == 0:
                self.ledger.take_snapshot()
                yield from peer.charge_statedb(
                    backend.drain_cost(), "snapshot")

    def _vscc_one(self, envelope: TransactionEnvelope,
                  flags: list[ValidationCode | None], index: int):
        peer = self._peer
        with peer.tracer.span("validate.vscc", category="validate",
                              node=peer.name, tx_id=envelope.tx_id):
            # On a monitored pool acquire() reports the measured queue wait
            # to the tracer, which lands on this span automatically.
            request = yield from self._workers.acquire()
            try:
                cost = peer.costs.vscc_tx_cpu(len(envelope.endorsements))
                yield from peer.cpu.use(cost)
                flags[index] = self._vscc.validate(envelope, self.policy)
            finally:
                self._workers.release(request)
