"""Peer nodes: endorsement (execute phase) and validation/commit
(validate phase).

Every peer of the channel validates and commits every block; a subset of
peers additionally endorse transaction proposals (§II of the paper).  The
machines of the execute phase therefore also carry the validate phase's
load — the paper's explanation for the validate-phase bottleneck.
"""

from repro.peer.endorser import Endorser
from repro.peer.gossip import GossipService
from repro.peer.peer import PeerNode
from repro.peer.validator import BlockValidator, check_mvcc

__all__ = [
    "BlockValidator",
    "Endorser",
    "GossipService",
    "PeerNode",
    "check_mvcc",
]
