"""The endorser: proposal checks, chaincode execution, response signing.

Implements the four endorsement checks of §II — the proposal is well-formed,
the transaction has not been submitted in the past, the signature is valid,
and the submitter is authorized to transact on the channel — then executes
the chaincode against the current world state to produce the read/write set,
and signs the response via ESCC.
"""

from __future__ import annotations

import typing

from repro.chaincode.base import ChaincodeError, ChaincodeStub
from repro.chaincode.system import ESCC
from repro.common.crypto import Signature
from repro.common.types import Proposal, ProposalResponse
from repro.sim.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.peer.peer import PeerNode


class Endorser:
    """Per-peer endorsement engine with a bounded concurrency pool."""

    def __init__(self, peer: "PeerNode") -> None:
        self._peer = peer
        self._escc = ESCC(peer.identity)
        self._slots = Resource(peer.sim,
                               capacity=peer.costs.endorser_concurrency,
                               name=f"{peer.name}.endorser.slots")
        self.proposals_endorsed = 0
        self.proposals_rejected = 0

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length

    @property
    def slots(self) -> Resource:
        """The endorsement concurrency pool (observability attachment)."""
        return self._slots

    def endorse(self, proposal: Proposal, signature: Signature):
        """Process one proposal; returns a :class:`ProposalResponse`.

        A generator (simulation process): occupies an endorsement slot,
        charges CPU, and waits out the chaincode container round trip.
        """
        peer = self._peer
        with peer.tracer.span("endorse", category="execute", node=peer.name,
                              tx_id=proposal.tx_id) as span:
            # On a monitored pool acquire() reports the measured queue wait
            # to the tracer, which lands on this span automatically.
            request = yield from self._slots.acquire()
            try:
                # CPU: checks 1-4, chaincode execution, ESCC signing.
                yield from peer.cpu.use(peer.costs.endorse_cpu)
                failure = self._check_proposal(proposal, signature)
                if failure is not None:
                    self.proposals_rejected += 1
                    span.annotate(outcome="rejected")
                    return failure
                # User chaincode runs in its Docker container: round-trip
                # latency without additional peer CPU.
                if peer.costs.chaincode_container_latency > 0:
                    yield peer.sim.timeout(
                        peer.costs.chaincode_container_latency)
                response = self._execute(proposal)
                # Chaincode ran synchronously against the state backend;
                # charge the accrued read cost on the state-DB resource
                # (drain happens before any yield, so the cost is ours).
                ledger = peer.ledger_for(proposal.channel)
                if ledger is not None:
                    yield from peer.charge_statedb(
                        ledger.state.drain_cost(), "read")
                if response.ok:
                    self.proposals_endorsed += 1
                else:
                    self.proposals_rejected += 1
                    span.annotate(outcome="failed")
                return response
            finally:
                self._slots.release(request)

    def _check_proposal(self, proposal: Proposal,
                        signature: Signature) -> ProposalResponse | None:
        """Checks 1-4 of §II; returns a failure response or None if OK."""
        peer = self._peer
        if not proposal.tx_id or proposal.tx_id != Proposal.compute_tx_id(
                proposal.creator, proposal.nonce):
            return self._failure(proposal, "malformed proposal")
        ledger = peer.ledger_for(proposal.channel)
        if ledger is None:
            return self._failure(
                proposal, f"peer not joined to {proposal.channel!r}")
        if ledger.has_transaction(proposal.tx_id):
            return self._failure(proposal, "transaction already submitted")
        if not peer.msp.verify_signature(
                signature, proposal.bytes_to_sign(), peer.identity.msp_id):
            return self._failure(proposal, "bad client signature")
        if not peer.msp.is_channel_writer(proposal.channel,
                                          proposal.creator):
            return self._failure(
                proposal, f"{proposal.creator} may not write "
                f"{proposal.channel}")
        if proposal.chaincode not in peer.chaincodes:
            return self._failure(
                proposal, f"chaincode {proposal.chaincode!r} not installed")
        return None

    def _execute(self, proposal: Proposal) -> ProposalResponse:
        """Simulate the chaincode against current state; build the response."""
        peer = self._peer
        chaincode = peer.chaincodes.get(proposal.chaincode)
        ledger = peer.ledger_for(proposal.channel)
        stub = ChaincodeStub(ledger.state, proposal.tx_id,
                             proposal.creator)
        try:
            payload = chaincode.invoke(stub, proposal.function,
                                       list(proposal.args))
        except ChaincodeError as error:
            return self._failure(proposal, str(error))
        response = ProposalResponse(
            tx_id=proposal.tx_id, endorser=peer.name, status=200,
            payload=payload, rwset=stub.build_rwset(), endorsement=None)
        endorsement = self._escc.endorse(response)
        return ProposalResponse(
            tx_id=response.tx_id, endorser=response.endorser,
            status=response.status, payload=response.payload,
            rwset=response.rwset, endorsement=endorsement)

    def _failure(self, proposal: Proposal,
                 message: str) -> ProposalResponse:
        return ProposalResponse(
            tx_id=proposal.tx_id, endorser=self._peer.name, status=500,
            payload=b"", rwset=None, endorsement=None, message=message)
