"""Block dissemination between peers.

In Fabric, one leader peer per organisation pulls blocks from the ordering
service and gossips them to the other peers.  The simulation supports both
modes: direct deliver (every peer subscribes to an OSN — the paper's setup,
where block propagation cost is carried by the orderer links) and gossip
(only the leader peer subscribes and forwards).
"""

from __future__ import annotations

import typing

from repro.common.types import Block

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.peer.peer import PeerNode


class GossipService:
    """Forwards received blocks to peer neighbours (leader-peer mode)."""

    def __init__(self, peer: "PeerNode", is_leader: bool = False) -> None:
        self._peer = peer
        self.is_leader = is_leader
        self.neighbours: list[str] = []
        self.blocks_forwarded = 0

    def set_neighbours(self, names: list[str]) -> None:
        self.neighbours = [name for name in names if name != self._peer.name]

    def on_block(self, block: Block, from_orderer: bool) -> None:
        """Forward a block to neighbours if we lead and it came fresh."""
        if self.is_leader and from_orderer:
            for neighbour in self.neighbours:
                self._peer.send(neighbour, "gossip_block", block,
                                size=block.wire_size())
            self.blocks_forwarded += len(self.neighbours)
            if self.neighbours:
                self._peer.tracer.instant(
                    "gossip.forward", category="gossip",
                    node=self._peer.name, block=block.number,
                    fanout=len(self.neighbours))
