"""Block dissemination between peers.

In Fabric, one leader peer per organisation pulls blocks from the ordering
service and gossips them to the other peers.  The simulation supports both
modes: direct deliver (every peer subscribes to an OSN — the paper's setup,
where block propagation cost is carried by the orderer links) and gossip
(only the leader peer subscribes and forwards).

Gossip itself comes in two shapes:

- **flat** (the default, ``gossip_fanout=0``): the leader unicasts every
  block to every other peer.  Faithful to small deployments, but at 100+
  peers it serialises P-1 copies of each block through the leader's NIC;
- **relay tree** (``gossip_fanout=N``): peers form an N-ary tree rooted at
  the leader and every peer forwards each fresh block to at most N
  children, so dissemination is O(log_N P) hops with per-node egress
  bounded by N — the sane fan-out for scale-out topologies.
"""

from __future__ import annotations

import typing

from repro.common.types import Block

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.peer.peer import PeerNode


def relay_children(names: list[str], fanout: int) -> dict[str, list[str]]:
    """Assign each peer its children in an N-ary relay tree.

    ``names[0]`` is the root (the leader peer); node ``i``'s children are
    nodes ``i*fanout + 1 .. i*fanout + fanout`` in list order — the classic
    implicit-heap layout, deterministic for a deterministic name order.
    """
    if fanout < 1:
        raise ValueError(f"relay fanout must be >= 1, got {fanout}")
    children: dict[str, list[str]] = {}
    for index, name in enumerate(names):
        first = index * fanout + 1
        children[name] = names[first:first + fanout]
    return children


class GossipService:
    """Forwards received blocks to peer neighbours (leader-peer mode)."""

    def __init__(self, peer: "PeerNode", is_leader: bool = False) -> None:
        self._peer = peer
        self.is_leader = is_leader
        self.neighbours: list[str] = []
        #: Relay-tree children; non-empty switches this peer to tree mode
        #: (forward each fresh block to the children, whether it arrived
        #: from the orderer or from the parent peer).
        self.children: list[str] = []
        self.blocks_forwarded = 0

    def set_neighbours(self, names: list[str]) -> None:
        self.neighbours = [name for name in names if name != self._peer.name]

    def set_children(self, names: list[str]) -> None:
        self.children = [name for name in names if name != self._peer.name]

    def on_block(self, block: Block, from_orderer: bool) -> None:
        """Forward a block onward if this peer carries dissemination duty."""
        if self.children:
            # Relay tree: the leader injects orderer blocks, every relay
            # (including the leader) forwards to its children exactly once
            # — the tree has no cycles, so one receipt means one forward.
            if from_orderer and not self.is_leader:
                return
            self._forward(block, self.children)
        elif self.is_leader and from_orderer:
            self._forward(block, self.neighbours)

    def _forward(self, block: Block, targets: list[str]) -> None:
        for target in targets:
            self._peer.send(target, "gossip_block", block,
                            size=block.wire_size())
        self.blocks_forwarded += len(targets)
        if targets:
            self._peer.tracer.instant(
                "gossip.forward", category="gossip",
                node=self._peer.name, block=block.number,
                fanout=len(targets))
