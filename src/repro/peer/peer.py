"""The peer node: endorsement front-end + validation/commit back-end.

A peer may join multiple channels (§II: channels are private blockchain
subnets); it keeps one ledger and one validation pipeline per channel and
routes proposals and blocks by their channel field.
"""

from __future__ import annotations

import dataclasses

from repro.chaincode.base import Chaincode
from repro.chaincode.policy import EndorsementPolicy
from repro.chaincode.registry import ChaincodeRegistry
from repro.common.config import StateDBConfig
from repro.common.errors import ConfigurationError
from repro.common.types import Block, Proposal, ValidationCode
from repro.ledger.ledger import Ledger
from repro.msp.identity import Identity
from repro.msp.msp import MSP
from repro.peer.endorser import Endorser
from repro.peer.gossip import GossipService
from repro.peer.validator import BlockValidator
from repro.runtime.context import NetworkContext
from repro.runtime.node import NodeBase
from repro.sim.resources import Resource
from repro.statedb import build_backend


@dataclasses.dataclass
class ChannelState:
    """One joined channel's ledger and validation pipeline."""

    ledger: Ledger
    validator: BlockValidator


class PeerNode(NodeBase):
    """A Fabric peer: endorses (if endorsing) and validates/commits."""

    def __init__(self, context: NetworkContext, identity: Identity,
                 msp: MSP, is_endorsing: bool = True,
                 gossip_leader: bool = False,
                 statedb: StateDBConfig | None = None) -> None:
        super().__init__(context, identity.name,
                         cores=context.costs.peer_cores)
        self.identity = identity
        self.msp = msp
        self.is_endorsing = is_endorsing
        self.statedb_config = statedb if statedb is not None else (
            StateDBConfig())
        self.chaincodes = ChaincodeRegistry()
        self._channel_states: dict[str, ChannelState] = {}
        self.endorser: Endorser | None = (
            Endorser(self) if is_endorsing else None)
        self.gossip = GossipService(self, is_leader=gossip_leader)
        # The block store disk (separate from CPU).
        self.disk = Resource(self.sim, capacity=1,
                             name=f"{self.name}.disk")
        # The state database (LevelDB file / CouchDB connection); serial,
        # separate from the block-store disk so bottleneck attribution can
        # tell "appending blocks" apart from "state reads/writes".
        self.statedb = Resource(self.sim, capacity=1,
                                name=f"{self.name}.statedb")
        # tx_id -> client node to notify on commit.
        self._listeners: dict[str, str] = {}
        #: The OSN this peer's deliver stream comes from (redelivery source).
        self.deliver_source: str | None = None
        self.on("proposal", self._handle_proposal)
        self.on("block", self._handle_block)
        self.on("gossip_block", self._handle_gossip_block)
        self.on("register_listener", self._handle_register_listener)
        self.on("deregister_listener", self._handle_deregister_listener)

    # ------------------------------------------------------------------
    # Channel membership
    # ------------------------------------------------------------------

    def install_chaincode(self, chaincode: Chaincode) -> None:
        self.chaincodes.install(chaincode)

    def join_channel(self, channel: str, policy: EndorsementPolicy) -> None:
        """Join ``channel``: create its ledger and validation pipeline."""
        if channel in self._channel_states:
            raise ConfigurationError(
                f"{self.name} already joined {channel!r}")
        backend = build_backend(self.statedb_config, self.costs)
        ledger = Ledger(channel, backend=backend)
        self._channel_states[channel] = ChannelState(
            ledger=ledger,
            validator=BlockValidator(self, policy, ledger))

    def subscribe_to_orderer(self, osn_name: str,
                             channels: list[str] | None = None) -> None:
        """Open the deliver stream from an ordering service node."""
        self.deliver_source = osn_name
        self.send(osn_name, "deliver_subscribe",
                  {"channels": channels or self.channels})

    def request_redelivery(self, channel: str, number: int) -> None:
        """Ask the deliver source to resend one block (drop recovery).

        A no-op when the peer has no deliver stream (gossip-only peers get
        their blocks re-gossiped instead).
        """
        if self.deliver_source is None:
            return
        self.send(self.deliver_source, "deliver_resend",
                  {"channel": channel, "number": number})

    @property
    def channels(self) -> list[str]:
        return list(self._channel_states)

    @property
    def channel(self) -> str | None:
        """The first joined channel (single-channel convenience)."""
        return next(iter(self._channel_states), None)

    def _default_state(self) -> ChannelState | None:
        for state in self._channel_states.values():
            return state
        return None

    @property
    def ledger(self) -> Ledger | None:
        """The first joined channel's ledger (single-channel convenience)."""
        state = self._default_state()
        return state.ledger if state else None

    @property
    def validator(self) -> BlockValidator | None:
        """The first joined channel's validator (convenience)."""
        state = self._default_state()
        return state.validator if state else None

    def ledger_for(self, channel: str) -> Ledger | None:
        state = self._channel_states.get(channel)
        return state.ledger if state else None

    def validator_for(self, channel: str) -> BlockValidator | None:
        state = self._channel_states.get(channel)
        return state.validator if state else None

    # ------------------------------------------------------------------
    # State database charging / recovery
    # ------------------------------------------------------------------

    def charge_statedb(self, cost: float, operation: str):
        """Sub-generator: charge ``cost`` seconds on the state-DB resource.

        Callers accrue backend cost synchronously (see
        :meth:`~repro.statedb.backend.StateBackend.drain_cost`) and charge
        it here, under a ``statedb.<operation>`` span so bottleneck
        attribution can pin commit time on state-database operations.
        """
        if cost <= 0:
            return
        with self.tracer.span(f"statedb.{operation}", category="statedb",
                              node=self.name) as span:
            span.annotate(cost=round(cost, 9))
            yield from self.statedb.use(cost)

    def recover(self) -> None:
        """Bring the peer back; rebuild wiped state DBs before serving.

        With ``wipe_on_crash`` the state database does not survive the
        crash: each channel's backend is rebuilt from its latest snapshot
        plus block replay (or genesis replay without snapshots).  The data
        rebuild is immediate — the ledger is never observably inconsistent
        — while the rebuild *cost* occupies the statedb resource, so
        post-recovery commits queue behind the catch-up and the recovery
        curves reflect it.
        """
        super().recover()
        if not self.statedb_config.wipe_on_crash:
            return
        total_cost = 0.0
        for channel, state in self._channel_states.items():
            snapshot_height, replayed = state.ledger.rebuild_state()
            total_cost += state.ledger.state.drain_cost()
            source = (f"snapshot@{snapshot_height}" if snapshot_height
                      else "genesis")
            self.context.metrics.runtime_event(
                "statedb.catchup", self.name,
                f"{channel}: restored from {source}, "
                f"replayed {replayed} block(s)")
        if total_cost > 0:
            self.sim.process(self.charge_statedb(total_cost, "catchup"))

    # ------------------------------------------------------------------
    # Execute phase: endorsement
    # ------------------------------------------------------------------

    def _handle_proposal(self, message):
        proposal: Proposal = message.payload["proposal"]
        signature = message.payload["signature"]
        if proposal.channel not in self._channel_states:
            return
        if not self.is_endorsing or self.endorser is None:
            return
        response = yield from self.endorser.endorse(proposal, signature)
        size = 600 + (len(response.payload) if response.ok else 0)
        self.send(message.source, "proposal_response", response, size=size)

    # ------------------------------------------------------------------
    # Validate phase: blocks
    # ------------------------------------------------------------------

    def _handle_block(self, message):
        block: Block = message.payload
        self.gossip.on_block(block, from_orderer=True)
        self._accept_block(block)
        return
        yield  # pragma: no cover

    def _handle_gossip_block(self, message):
        block: Block = message.payload
        # Relay-tree mode forwards gossiped blocks onward to this peer's
        # children; flat mode makes this a no-op (only the leader forwards,
        # and only blocks fresh from the orderer).
        self.gossip.on_block(block, from_orderer=False)
        self._accept_block(block)
        return
        yield  # pragma: no cover

    def _accept_block(self, block: Block) -> None:
        state = self._channel_states.get(block.channel)
        if state is not None:
            state.validator.submit_block(block)

    # ------------------------------------------------------------------
    # Commit events
    # ------------------------------------------------------------------

    def _handle_register_listener(self, message):
        tx_id = message.payload["tx_id"]
        self._listeners[tx_id] = message.source
        return
        yield  # pragma: no cover

    def _handle_deregister_listener(self, message):
        """Client withdrew a commit listener (timed-out attempt)."""
        self._listeners.pop(message.payload["tx_id"], None)
        return
        yield  # pragma: no cover

    @property
    def listener_count(self) -> int:
        """Registered commit listeners (leak detection in tests)."""
        return len(self._listeners)

    def notify_commit(self, tx_id: str, code: ValidationCode) -> None:
        """Called by a validator when a transaction commits."""
        listener = self._listeners.pop(tx_id, None)
        if listener is not None:
            self.send(listener, "commit_event",
                      {"tx_id": tx_id, "code": code})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        ledger = self.ledger
        return ledger.height if ledger else 0

    def __repr__(self) -> str:
        role = "endorsing" if self.is_endorsing else "committing"
        return f"<PeerNode {self.name} ({role}) height={self.height}>"
