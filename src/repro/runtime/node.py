"""A simulated machine: network endpoint, multi-core CPU, dispatch loop.

Peers, ordering service nodes, Kafka brokers, ZooKeeper nodes, and clients
all extend :class:`NodeBase`.  A node registers message handlers by type;
the receive loop dispatches each incoming message to its handler as a new
process, so handlers that block (on CPU, timers, or further messages) do not
stall message intake — mirroring gRPC servers, which accept concurrently.
"""

from __future__ import annotations

import typing

from repro.common.errors import ConfigurationError
from repro.runtime.context import NetworkContext
from repro.sim.core import Process
from repro.sim.events import Event, Timeout
from repro.sim.network import Message, NodeDownError
from repro.sim.resources import Resource

Handler = typing.Callable[[Message], typing.Generator[Event, typing.Any, None]]


class NodeBase:
    """A named node with a CPU and a typed message-dispatch loop."""

    def __init__(self, context: NetworkContext, name: str,
                 cores: int = 4) -> None:
        if not name:
            raise ConfigurationError("node name must be non-empty")
        self.context = context
        self.sim = context.sim
        self.network = context.network
        self.costs = context.costs
        self.name = name
        self.cpu = Resource(self.sim, capacity=cores, name=f"{name}.cpu")
        self.network.add_node(name)
        self._handlers: dict[str, Handler] = {}
        self._receive_process = None
        self.crashed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the receive loop.  Subclasses extend to start timers."""
        if self._receive_process is None:
            self._receive_process = self.sim.process(self._receive_loop())

    def crash(self) -> None:
        """Fail-stop this node: drop traffic and ignore future messages."""
        self.crashed = True
        self.network.crash_node(self.name)

    def recover(self) -> None:
        """Bring the node back (volatile state retained unless overridden)."""
        self.crashed = False
        self.network.restore_node(self.name)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def on(self, msg_type: str, handler: Handler) -> None:
        """Register ``handler`` for messages of ``msg_type``."""
        if msg_type in self._handlers:
            raise ConfigurationError(
                f"{self.name}: handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    def send(self, destination: str, msg_type: str, payload: typing.Any,
             size: int = 256) -> None:
        """Fire-and-forget send; silently dropped if this node is down."""
        try:
            self.network.send(Message(source=self.name,
                                      destination=destination,
                                      msg_type=msg_type, payload=payload,
                                      size=size))
        except NodeDownError:
            pass

    def _receive_loop(self):
        while True:
            message = yield self.network.receive(self.name)
            if self.crashed:
                continue
            handler = self._handlers.get(message.msg_type)
            if handler is None:
                raise ConfigurationError(
                    f"{self.name}: no handler for {message.msg_type!r} "
                    f"(from {message.source})")
            # Direct Process construction (not sim.process()): one spawn
            # per delivered message makes the factory frame measurable.
            Process(self.sim, self._dispatch(handler, message), daemon=True,
                    eager=True)

    def _dispatch(self, handler: Handler, message: Message):
        # The TLS charge is cpu.use() flattened inline: one _dispatch per
        # received message makes this the second-hottest generator in a
        # reference run, and the sub-generator's create/delegate overhead
        # is measurable.  Same events in the same order (Request, Timeout).
        tls = self.costs.tls_per_message_cpu
        if tls > 0:
            cpu = self.cpu
            request = cpu.request()
            try:
                # Grant wait inside the try: an interrupt here must
                # still return the slot.
                yield request
                yield Timeout(self.sim, tls)
            finally:
                cpu.release(request)
        yield from handler(message)

    # ------------------------------------------------------------------
    # CPU helpers
    # ------------------------------------------------------------------

    def compute(self, cpu_seconds: float):
        """Sub-generator: occupy one core for ``cpu_seconds``."""
        yield from self.cpu.use(cpu_seconds)

    @property
    def tracer(self):
        """The context's span tracer (read dynamically: observability may
        be installed after node construction)."""
        return self.context.tracer

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
