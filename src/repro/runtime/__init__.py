"""Runtime substrate shared by peers, orderers, and clients.

- :class:`~repro.runtime.costs.CostModel`: the calibrated per-operation CPU,
  I/O, and pipeline-latency constants that stand in for the paper's testbed
  hardware (see DESIGN.md §2 for the derivation from Table II/III).
- :class:`~repro.runtime.node.NodeBase`: a simulated machine — a named
  network endpoint with a multi-core CPU and a message-dispatch loop.
- :class:`~repro.runtime.context.NetworkContext`: the bundle (simulation,
  network, RNG, cost model, metrics) every node is constructed from.
"""

from repro.runtime.context import NetworkContext
from repro.runtime.costs import CostModel
from repro.runtime.node import NodeBase

__all__ = ["CostModel", "NetworkContext", "NodeBase"]
