"""The bundle of simulation services every node is constructed from."""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.tracer import NULL_TRACER
from repro.runtime.costs import CostModel
from repro.sim.core import Simulation
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector
    from repro.obs.tracer import NullTracer, Tracer


@dataclasses.dataclass
class NetworkContext:
    """Simulation, network, randomness, costs, and metrics in one handle."""

    sim: Simulation
    network: Network
    rng: RngRegistry
    costs: CostModel
    metrics: "MetricsCollector"
    #: Span tracer; the shared no-op :data:`~repro.obs.tracer.NULL_TRACER`
    #: unless an observability layer installs a recording one.
    tracer: "Tracer | NullTracer" = NULL_TRACER

    @classmethod
    def create(cls, seed: int = 0, costs: CostModel | None = None,
               latency: float = 0.00025, bandwidth: float = 125_000_000.0,
               jitter: float = 0.2,
               scheduler: str = "array") -> "NetworkContext":
        """Build a fresh context with paper-default network parameters.

        ``scheduler`` selects the kernel event scheduler (``"array"`` or
        the legacy ``"heap"`` oracle — see :mod:`repro.sim.scheduler`).
        """
        from repro.metrics.collector import MetricsCollector

        sim = Simulation(scheduler=scheduler)
        rng = RngRegistry(seed=seed)
        network = Network(sim, rng, default_latency=latency,
                          default_bandwidth=bandwidth, latency_jitter=jitter)
        cost_model = costs or CostModel()
        cost_model.validate()
        return cls(sim=sim, network=network, rng=rng, costs=cost_model,
                   metrics=MetricsCollector(sim))
