"""The calibrated cost model standing in for the paper's testbed hardware.

Every constant is either taken from the paper's configuration (Table I,
§III, §IV) or calibrated against the paper's own measurements (Tables II and
III); the derivation is in DESIGN.md §2 and the resulting paper-vs-measured
comparison in EXPERIMENTS.md.  The key calibration targets:

- one fabric-sdk-node client sustains ~50 tx/s (Table II scales ~50 tps per
  added endorsing peer under *every* policy, and the paper runs one client
  per endorsing peer — Fig. 1's per-peer arrival fractions);
- the validate phase saturates at ~305 tps with one endorsement per tx (OR)
  and ~210 tps with five (AND5) — the paper's bottleneck values;
- endorsement itself is cheap (~4 ms CPU), so the execute phase scales with
  peers under OR, while under AND every target peer endorses every
  transaction.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.common.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.common.config import StateDBConfig


@dataclasses.dataclass
class CostModel:
    """Per-operation costs, in seconds (CPU time unless stated otherwise)."""

    # ------------------------------------------------------------------
    # Client (fabric-sdk-node 1.0.0 on Node.js 8.16.2, one CPU thread)
    # ------------------------------------------------------------------
    #: CPU to build and sign a transaction proposal.
    client_prep_cpu: float = 0.012
    #: CPU to check one endorsement response and fold it into the envelope.
    client_collect_cpu: float = 0.003
    #: CPU to assemble and broadcast the envelope to the ordering service.
    client_submit_cpu: float = 0.005
    #: Fixed SDK pipeline latency (gRPC marshalling, MSP config access);
    #: asynchronous, so it adds latency without consuming client CPU.
    sdk_base_latency: float = 0.19
    #: Additional pipeline latency per endorsement collected.
    sdk_per_endorsement_latency: float = 0.05
    #: Hardware threads per client machine driving the SDK event loop.
    client_threads: int = 1

    # ------------------------------------------------------------------
    # Endorsing peer (execute phase)
    # ------------------------------------------------------------------
    #: Cores per peer machine (i7-2600 has 4 physical cores).
    peer_cores: int = 4
    #: CPU per proposal: checks 1-4 of §II + chaincode execution + ESCC.
    endorse_cpu: float = 0.004
    #: Docker-container round-trip latency for user chaincode (not CPU).
    chaincode_container_latency: float = 0.003
    #: Concurrent endorsement slots per peer (gRPC handler pool).
    endorser_concurrency: int = 4

    # ------------------------------------------------------------------
    # Validating peer (validate phase)
    # ------------------------------------------------------------------
    #: VSCC fixed CPU per transaction (policy fetch, proto unmarshalling).
    vscc_base_cpu: float = 0.0047
    #: VSCC CPU per endorsement signature verified — this is why AND
    #: validates slower than OR.
    vscc_per_endorsement_cpu: float = 0.00074
    #: Parallel VSCC workers per peer (Fabric's validator pool).
    validator_workers: int = 2
    #: Serial MVCC read-conflict check per transaction.
    mvcc_per_tx_cpu: float = 0.00025
    #: Block commit: ledger (block store) append, one fsync per block.
    commit_per_block_io: float = 0.018
    #: Legacy flat per-transaction commit cost.  Kept for the analytical
    #: model; the simulated commit path now charges the per-operation state
    #: database costs below instead (the LevelDB defaults reproduce it).
    commit_per_tx_io: float = 0.00012
    #: Verify the orderer's signature on a received block.
    block_verify_cpu: float = 0.0008

    # ------------------------------------------------------------------
    # State database backends (Thakkar et al.: GoLevelDB vs CouchDB)
    # ------------------------------------------------------------------
    #: GoLevelDB point read (embedded, memtable/SSTable hit).
    leveldb_read_io: float = 0.00002
    #: GoLevelDB iterator step per key during a range scan.
    leveldb_scan_per_key_io: float = 0.000004
    #: GoLevelDB WriteBatch: the batch fsync rides the block-store append
    #: (commit_per_block_io), so only the per-key cost is charged.
    leveldb_write_batch_base_io: float = 0.0
    #: GoLevelDB per-key cost inside a write batch (matches the legacy
    #: commit_per_tx_io calibration, so default runs reproduce the paper).
    leveldb_write_per_key_io: float = 0.00012
    #: CouchDB per-HTTP-request overhead (connection, headers, JSON parse)
    #: — the dominant term Thakkar et al. measure, and what the bulk APIs
    #: (_all_docs / _bulk_docs) amortize over a whole block.
    couch_request_io: float = 0.004
    #: CouchDB per-document cost on a read (B-tree lookup + JSON encode).
    couch_read_per_doc_io: float = 0.0004
    #: CouchDB per-document cost on a write (revision check, index update,
    #: append-only B-tree write).
    couch_write_per_doc_io: float = 0.0008
    #: Snapshot serialization / restore throughput (charged per byte).
    snapshot_io_per_byte: float = 2.0e-8

    # ------------------------------------------------------------------
    # Ordering service
    # ------------------------------------------------------------------
    #: OSN CPU per envelope received (TLS, unmarshalling, size checks).
    orderer_per_envelope_cpu: float = 0.00035
    orderer_cores: int = 4
    #: Sign a cut block.
    block_sign_cpu: float = 0.0012
    #: Kafka broker CPU to append one message to the partition log.
    kafka_append_cpu: float = 0.00015
    #: ZooKeeper quorum-write service time (leader election bookkeeping).
    zookeeper_write_cpu: float = 0.0002
    #: Raft node CPU to append one entry to its log.
    raft_append_cpu: float = 0.00015
    #: Disk fsync charged when a consensus log forces to stable storage.
    consensus_fsync_io: float = 0.0004

    # ------------------------------------------------------------------
    # TLS (enabled on both orderers and peers in the paper)
    # ------------------------------------------------------------------
    #: CPU per message for TLS record processing, charged at the receiver.
    tls_per_message_cpu: float = 0.00003

    #: Memo for :meth:`vscc_tx_cpu`.  Keyed by (endorsements, base, per) so
    #: reconfiguring the model mid-run can never serve a stale cost.
    _vscc_memo: dict[tuple[int, float, float], float] = dataclasses.field(
        default_factory=dict, init=False, repr=False, compare=False)

    def validate(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ConfigurationError(f"{field.name} must be >= 0")
        for field_name in ("peer_cores", "endorser_concurrency",
                           "validator_workers", "orderer_cores",
                           "client_threads"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")

    # ------------------------------------------------------------------
    # Derived capacities (used by the analytical model and tests)
    # ------------------------------------------------------------------

    def client_capacity(self) -> float:
        """Max tx/s one client process can generate."""
        per_tx = (self.client_prep_cpu + self.client_collect_cpu
                  + self.client_submit_cpu)
        return self.client_threads / per_tx

    def endorser_capacity(self) -> float:
        """Max endorsements/s one peer can serve."""
        slots = min(self.endorser_concurrency, self.peer_cores)
        return slots / self.endorse_cpu

    def vscc_tx_cpu(self, endorsements: int) -> float:
        """VSCC CPU for one transaction carrying ``endorsements`` signatures.

        Memoised: the validator calls this once per transaction with a
        handful of distinct endorsement counts over a whole run.
        """
        key = (endorsements, self.vscc_base_cpu,
               self.vscc_per_endorsement_cpu)
        memo = self._vscc_memo
        value = memo.get(key)
        if value is None:
            value = key[1] + key[2] * endorsements
            memo[key] = value
        return value

    def validate_capacity(self, endorsements: int) -> float:
        """Max tx/s one peer can validate, given endorsements per tx."""
        vscc_rate = (min(self.validator_workers, self.peer_cores)
                     / self.vscc_tx_cpu(endorsements))
        mvcc_rate = 1.0 / self.mvcc_per_tx_cpu
        return min(vscc_rate, mvcc_rate)

    # ------------------------------------------------------------------
    # State-database analytic cost contract
    # ------------------------------------------------------------------
    # Closed-form mirrors of the backend cost hooks in repro.statedb: the
    # analytic phase model prices a block's state-DB work from the same
    # constants the simulated backends charge, without instantiating one.

    def statedb_commit_io(self, statedb: "StateDBConfig",
                          block_txs: float,
                          writes_per_tx: float = 1.0) -> float:
        """I/O seconds to commit one block's write sets through ``statedb``.

        Mirrors ``LevelDBBackend._commit_cost`` / ``CouchDBBackend
        ._commit_cost``: LevelDB writes blindly through one batch; CouchDB
        pays per-request overhead (amortized by ``bulk``) and must learn
        unknown revisions first (eliminated by the read ``cache``).
        """
        writes = block_txs * writes_per_tx
        if writes <= 0:
            return 0.0
        if statedb.kind == "leveldb":
            return (self.leveldb_write_batch_base_io
                    + writes * self.leveldb_write_per_key_io)
        unknown = 0.0 if statedb.cache else writes
        per_doc = writes * self.couch_write_per_doc_io
        if statedb.bulk:
            cost = self.couch_request_io + per_doc
            if unknown:
                cost += (self.couch_request_io
                         + unknown * self.couch_read_per_doc_io)
            return cost
        cost = writes * self.couch_request_io + per_doc
        cost += unknown * (self.couch_request_io
                           + self.couch_read_per_doc_io)
        return cost

    def statedb_read_io(self, statedb: "StateDBConfig",
                        block_txs: float,
                        reads_per_tx: float = 0.0) -> float:
        """I/O seconds to serve one block's validation read set.

        The "unique" workload writes fresh keys and reads nothing
        (``reads_per_tx`` 0); "conflict" read-modify-writes read one key
        per transaction.  A warm read cache absorbs the read set entirely
        (the Thakkar best case the simulated ablation converges to).
        """
        reads = block_txs * reads_per_tx
        if reads <= 0 or statedb.cache:
            return 0.0
        if statedb.kind == "leveldb":
            return reads * self.leveldb_read_io
        if statedb.bulk:
            return (self.couch_request_io
                    + reads * self.couch_read_per_doc_io)
        return reads * (self.couch_request_io + self.couch_read_per_doc_io)
