"""Shared experiment execution: single points, sweeps, peak search."""

from __future__ import annotations

import dataclasses

from repro.common.config import (
    ChannelConfig,
    OrdererConfig,
    StateDBConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.fabric.network import FabricNetwork
from repro.fabric.run import run_experiment
from repro.metrics.collector import PhaseMetrics
from repro.obs import BottleneckReport

#: Paper defaults for figures 2-7: 10 endorsing peers; AND means AND5.
DEFAULT_PEERS = 10
OR_POLICY = "OR10"
AND_POLICY = "AND5"

#: Default arrival rate for traced runs: past the AND5 validate-phase
#: capacity (~210-240 tps) but below what the ten workload clients can
#: generate, so the saturated resource is the validator pool rather than
#: the load generators themselves.
TRACE_RATE = 250.0


@dataclasses.dataclass
class SweepPoint:
    """One (configuration, arrival rate) measurement."""

    orderer_kind: str
    policy: str
    peers: int
    rate: float
    metrics: PhaseMetrics

    @property
    def throughput(self) -> float:
        return self.metrics.overall_throughput

    @property
    def latency(self) -> float:
        return self.metrics.overall_latency


def make_topology(orderer_kind: str, policy: str, peers: int,
                  num_osns: int | None = None,
                  num_brokers: int = 3,
                  num_zookeepers: int = 3,
                  statedb: StateDBConfig | None = None) -> TopologyConfig:
    """Topology following the paper's §IV.A deployment."""
    if num_osns is None:
        num_osns = 1 if orderer_kind == "solo" else 3
    orderer = OrdererConfig(
        kind=orderer_kind, num_osns=num_osns,
        num_brokers=num_brokers, num_zookeepers=num_zookeepers,
        replication_factor=min(3, num_brokers))
    return TopologyConfig(
        num_endorsing_peers=peers,
        channel=ChannelConfig(endorsement_policy=policy),
        orderer=orderer,
        statedb=statedb if statedb is not None else StateDBConfig())


def make_workload(rate: float, duration: float = 15.0) -> WorkloadConfig:
    """Paper workload: 1-byte transactions, 3 s ordering timeout."""
    return WorkloadConfig(arrival_rate=rate, duration=duration,
                          warmup=min(3.0, duration / 4),
                          cooldown=min(2.0, duration / 6), tx_size=1)


def run_point(orderer_kind: str, policy: str, rate: float,
              peers: int = DEFAULT_PEERS, duration: float = 15.0,
              seed: int = 1, workload_kind: str = "unique",
              **topology_kwargs) -> SweepPoint:
    """Run one measurement point."""
    topology = make_topology(orderer_kind, policy, peers, **topology_kwargs)
    workload = make_workload(rate, duration)
    metrics = run_experiment(topology, workload, seed=seed,
                             workload_kind=workload_kind)
    return SweepPoint(orderer_kind=orderer_kind, policy=policy, peers=peers,
                      rate=rate, metrics=metrics)


@dataclasses.dataclass
class TracedPoint:
    """One observed measurement: metrics plus bottleneck attribution."""

    orderer_kind: str
    policy: str
    peers: int
    rate: float
    metrics: PhaseMetrics
    report: BottleneckReport
    network: FabricNetwork

    @property
    def throughput(self) -> float:
        return self.metrics.overall_throughput

    def write_chrome_trace(self, path: str) -> None:
        """Dump the run's span trace as Chrome ``trace_event`` JSON."""
        self.network.obs.write_chrome_trace(path)


def run_traced_point(orderer_kind: str = "solo",
                     policy: str = AND_POLICY,
                     rate: float = TRACE_RATE,
                     peers: int = DEFAULT_PEERS,
                     duration: float = 15.0, seed: int = 1,
                     sample_interval: float = 0.05,
                     workload_kind: str = "unique",
                     **topology_kwargs) -> TracedPoint:
    """Run one measurement point with span tracing and sampling enabled.

    The defaults reproduce the paper's Fig. 5 bottleneck: a Solo network
    under the AND5 policy driven past the validate phase's capacity, where
    the report names the validator worker pool as the saturated resource.
    """
    topology = make_topology(orderer_kind, policy, peers, **topology_kwargs)
    workload = make_workload(rate, duration)
    network = FabricNetwork(topology, workload, seed=seed, observe=True,
                            sample_interval=sample_interval,
                            workload_kind=workload_kind)
    metrics = network.run_workload()
    report = network.bottleneck_report()
    return TracedPoint(orderer_kind=orderer_kind, policy=policy,
                       peers=peers, rate=rate, metrics=metrics,
                       report=report, network=network)


def search_peak(orderer_kind: str, policy: str, peers: int,
                rates: list[float], duration: float = 15.0,
                seed: int = 1, workload_kind: str = "unique",
                **topology_kwargs) -> tuple[float, list[SweepPoint]]:
    """Sweep ``rates`` and return (peak throughput, all points).

    The paper reports peak throughput per configuration (Table II); the peak
    is the maximum committed rate over the sweep.
    """
    points = [run_point(orderer_kind, policy, rate, peers=peers,
                        duration=duration, seed=seed,
                        workload_kind=workload_kind, **topology_kwargs)
              for rate in rates]
    peak = max(point.throughput for point in points)
    return peak, points
