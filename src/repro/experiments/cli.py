"""Command-line entry point: regenerate any (or all) paper artifacts.

Usage::

    fabric-repro tab1
    fabric-repro fig2 --full
    fabric-repro all --seed 7
    repro lint
    repro check-determinism            # solo + kafka + raft double runs
    repro check-determinism --orderer raft
    repro faults --smoke               # single run of every fault scenario
    repro faults --scenario raft-leader-kill   # double run + criteria
    repro statedb                      # state-DB backend ablation (Thakkar)
    repro check-determinism --orderer solo --statedb couchdb
    repro perfbench                    # wall-clock benchmarks, all scenarios
    repro perfbench --smoke --check-golden --out BENCH_SMOKE.json  # CI gate
    repro trace --summary-out trace_summary.json  # critical-path + queueing
    repro obs-diff --baseline BENCH_PR10.json --candidate BENCH_NEW.json
    repro crossval --smoke --out crossval.json  # analytic model vs sim gate
    repro capacity --target-tps 300 --max-p95 2.0 --policy AND5

(``repro`` and ``fabric-repro`` are the same entry point.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing

from repro.experiments.figures import (
    run_fig2_fig3,
    run_fig4_fig5,
    run_fig6_fig7,
    run_fig8,
)
from repro.experiments.tables import run_table1, run_table2_table3

EXPERIMENT_IDS = ["tab1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                  "tab2", "tab3", "fig8"]


def _run_trace(args) -> int:
    """The ``trace`` subcommand: one observed run, bottleneck report,
    critical-path attribution, and the queueing observatory."""
    import json

    from repro.experiments.report import bottleneck_result
    from repro.experiments.runner import run_traced_point
    from repro.obs.critical_path import render_summary
    from repro.obs.queueing import render_queueing_report

    point = run_traced_point(
        orderer_kind=args.orderer, policy=args.policy, rate=args.rate,
        duration=args.duration, seed=args.seed,
        sample_interval=args.sample_interval)
    title = (f"Bottleneck attribution ({args.orderer}, {args.policy}, "
             f"{args.rate:g} tx/s)")
    result = bottleneck_result(point.report, title=title, top=args.top)
    print(result.render())
    print()
    summary = point.network.critical_path_report()
    print(render_summary(summary))
    print()
    queueing = point.network.queueing_report()
    print(render_queueing_report(queueing, top=args.top))
    print()
    print(f"throughput: {point.throughput:.1f} tx/s committed "
          f"(offered {args.rate:g} tx/s)")
    if args.trace_out:
        point.write_chrome_trace(args.trace_out)
        print(f"chrome trace written to {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")
    if args.summary_out:
        scenario = f"{args.orderer}-{args.policy}-{args.rate:g}tps"
        data = point.network.trace_summary(scenario=scenario,
                                           phase_metrics=point.metrics)
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        print(f"trace summary written to {args.summary_out}")
    if not queueing.little_ok:
        names = ", ".join(s.name for s in queueing.violations)
        print(f"trace: Little's-law check FAILED for {names}")
        return 1
    return 0


def _run_obs_diff(args) -> int:
    """The ``obs-diff`` subcommand: perf-regression gate for CI."""
    import json

    from repro.obs.regression import diff_files, render_diff

    if not args.baseline:
        print("obs-diff: --baseline PATH is required", file=sys.stderr)
        return 2
    if not args.candidate:
        print("obs-diff: --candidate PATH is required", file=sys.stderr)
        return 2
    result = diff_files(args.baseline, args.candidate,
                        tolerance=args.tolerance,
                        wall_tolerance=args.tol_wall,
                        events_rate_tolerance=args.tol_events_rate)
    if args.diff_json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff(result, verbose=args.diff_verbose))
    return 0 if result.ok else 1


def _run_lint(args) -> int:
    """The ``lint`` subcommand: simlint over the simulator source tree.

    Without ``--path``, sweeps the installed package with the strict
    profile plus ``tests/`` and ``benchmarks/`` with the relaxed one.
    Exit status: 0 when clean — or, with ``--baseline``, when no *new*
    error-severity findings appeared beyond the accepted baseline.
    """
    from repro.analysis_tools.simlint import output as lint_output
    from repro.analysis_tools.simlint.engine import LintResult
    from repro.analysis_tools.simlint.profiles import linter_for, rules_for

    project = bool(args.lint_project)
    if args.paths:
        runs = [(args.lint_profile, list(args.paths))]
    else:
        runs = [("strict", [_default_lint_root()])]
        repo_root = pathlib.Path(_default_lint_root()).parent.parent
        for extra in ("tests", "benchmarks"):
            tree = repo_root / extra
            if tree.is_dir():
                runs.append(("relaxed", [str(tree)]))

    diagnostics = []
    files_checked = 0
    suppressed = 0
    for profile, paths in runs:
        linter = linter_for(profile, project=project)
        partial = linter.lint_paths(paths, project=project)
        diagnostics.extend(partial.diagnostics)
        files_checked += partial.files_checked
        suppressed += partial.suppressed
    diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    result = LintResult(diagnostics=diagnostics,
                        files_checked=files_checked,
                        suppressed=suppressed)

    if args.write_baseline:
        data = lint_output.write_baseline(result, args.write_baseline)
        print(f"simlint: baseline with {len(data['fingerprints'])} "
              f"fingerprint(s) written to {args.write_baseline}")
        return 0

    baseline = (lint_output.load_baseline(args.baseline)
                if args.baseline else None)
    fresh = (lint_output.new_errors(result, baseline)
             if baseline is not None else None)

    if args.lint_format == "text":
        report = result.render()
        if fresh is not None:
            report += (f"\nsimlint: {len(fresh)} new error(s) vs baseline "
                       f"{args.baseline}")
    else:
        if args.lint_format == "sarif":
            payload = lint_output.to_sarif(
                result, rules_for("strict", project=True))
        else:
            payload = lint_output.to_json(result)
            if fresh is not None:
                payload["new_errors"] = [
                    lint_output.diagnostic_dict(d) for d in fresh]
        report = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        pathlib.Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(f"simlint: report written to {args.out}")
    else:
        print(report)

    if fresh is not None:
        return 0 if not fresh else 1
    return 0 if result.ok else 1


def _default_lint_root() -> str:
    """The installed ``repro`` package directory (works from any cwd)."""
    return str(pathlib.Path(__file__).resolve().parent.parent)


def _run_check_determinism(args) -> int:
    """The ``check-determinism`` subcommand: same-seed double runs."""
    from repro.common.config import StateDBConfig
    from repro.experiments.determinism import (
        CHECK_DURATION,
        CHECK_RATE,
        check_point_determinism,
    )

    kinds = (["solo", "kafka", "raft"] if args.orderer is None
             else [args.orderer])
    rate = args.check_rate if args.check_rate is not None else CHECK_RATE
    duration = (args.check_duration if args.check_duration is not None
                else CHECK_DURATION)
    statedb = None
    workload_kind = "unique"
    if args.statedb == "couchdb":
        # Exercise every statedb feature at once: the CouchDB cost model,
        # the read cache, bulk batching, and periodic snapshots, on the
        # read-write workload that keeps the read path hot.
        statedb = StateDBConfig(kind="couchdb", cache=True, bulk=True,
                                snapshot_interval=3)
        workload_kind = "conflict"
    elif args.statedb == "leveldb":
        statedb = StateDBConfig(kind="leveldb")
    failures = 0
    for kind in kinds:
        check = check_point_determinism(
            kind, rate=rate, duration=duration, seed=args.seed,
            keep_records=not args.digest_only, statedb=statedb,
            workload_kind=workload_kind)
        print(check.render())
        print()
        if not check.ok:
            failures += 1
    if failures:
        print(f"check-determinism: {failures}/{len(kinds)} "
              f"configuration(s) NON-DETERMINISTIC")
        return 1
    print(f"check-determinism: all {len(kinds)} configuration(s) "
          f"reproducible (byte-identical schedules and metrics)")
    return 0


def _run_faults(args) -> int:
    """The ``faults`` subcommand: fault scenarios + recovery criteria.

    Default (and ``--scenario``): same-seed double run per scenario, so a
    failure is either a broken recovery criterion or non-determinism.
    ``--smoke`` runs each scenario once (faster; CI gate).
    """
    from repro.experiments.faults import (
        SCENARIOS,
        check_scenario_determinism,
        run_fault_scenario,
    )

    names = [args.scenario] if args.scenario else sorted(SCENARIOS)
    failures = 0
    for name in names:
        if args.smoke:
            result = run_fault_scenario(name, seed=args.seed)
            print(result.render())
            print()
            if not result.ok:
                failures += 1
            continue
        check = check_scenario_determinism(
            name, seed=args.seed, keep_records=not args.digest_only)
        print(check.result.render())
        print(check.render())
        print()
        if not (check.ok and check.result.ok):
            failures += 1
    if failures:
        print(f"faults: {failures}/{len(names)} scenario(s) FAILED")
        return 1
    print(f"faults: all {len(names)} scenario(s) passed")
    return 0


def _run_statedb(args) -> int:
    """The ``statedb`` subcommand: backend ablation + attribution check.

    Exits non-zero when the Thakkar ordering (LevelDB > CouchDB+cache+bulk
    > plain CouchDB) or the CouchDB bottleneck attribution does not hold.
    """
    from repro.experiments.statedb import run_statedb_ablation

    mode = "full" if args.full else "quick"
    ablation = run_statedb_ablation(mode=mode, seed=args.seed)
    print(ablation.result.render())
    return 0 if ablation.ok else 1


def _run_scale(args) -> int:
    """The ``scale`` subcommand: peers x channels x population sweeps.

    With explicit ``--peers``/``--channels``/``--users``, runs a single
    point (and prints its per-cohort breakdown); otherwise runs the full
    or ``--smoke`` sweep grid.  Exits non-zero when a point commits
    nothing, builds more clients than cohorts, or loses a cohort's
    metrics — the O(cohorts) contract the subsystem guarantees.
    """
    import json

    from repro.experiments.farm import FarmError
    from repro.experiments.scale import (
        ScaleSweep,
        run_scale_point,
        run_scale_sweep,
    )

    single = (args.peers is not None or args.channels is not None
              or args.users is not None)
    if single:
        point = run_scale_point(
            peers=args.peers if args.peers is not None else 100,
            channels=args.channels if args.channels is not None else 4,
            users=args.users if args.users is not None else 1_000_000,
            rate=args.scale_rate,
            duration=args.scale_duration,
            cohorts_per_channel=args.cohorts,
            seed=args.seed)
        sweep = ScaleSweep(points=[point], mode="point", seed=args.seed)
        print(sweep.render())
        print()
        print(f"{'cohort':<10} {'channel':<8} {'tps':>7}  {'lat_s':>6}")
        for name in sorted(point.per_cohort):
            metrics = point.per_cohort[name]
            channel = point.cohort_channels.get(name, "")
            print(f"{name:<10} {channel:<8} "
                  f"{metrics.overall_throughput:>7.1f}  "
                  f"{metrics.overall_latency:>6.3f}")
    else:
        try:
            sweep = run_scale_sweep(
                mode="smoke" if args.smoke else "full", seed=args.seed,
                jobs=args.jobs)
        except FarmError as error:
            print(f"scale: point {error.label!r} failed in a worker:\n"
                  f"{error.detail}", file=sys.stderr)
            return 1
        print(sweep.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(sweep.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"scale sweep written to {args.out}")
    return 0 if sweep.ok else 1


def _run_perfbench(args) -> int:
    """The ``perfbench`` subcommand: wall-clock runs + golden digests."""
    from repro.experiments.farm import FarmError
    from repro.experiments.perfbench import SMOKE_SCENARIOS, run_perfbench

    names = args.scenarios
    scale = "smoke" if args.smoke else "full"
    if names is None and args.smoke:
        names = SMOKE_SCENARIOS
    try:
        report = run_perfbench(
            names, seed=args.seed, scale=scale,
            check_golden=args.check_golden, update_golden=args.update_golden,
            jobs=args.jobs, repeats=args.repeats)
    except FarmError as error:
        print(f"perfbench: scenario {error.label!r} failed in a worker:\n"
              f"{error.detail}", file=sys.stderr)
        return 1
    print(report.render())
    if args.out:
        report.write_bench_file(args.out)
        print(f"benchmark trajectory written to {args.out}")
    if not report.ok:
        print("perfbench: golden digest check FAILED (the simulated "
              "schedule changed; if deliberate, regenerate with "
              "--update-golden)")
        return 1
    return 0


def _run_crossval(args) -> int:
    """The ``crossval`` subcommand: analytic phase model vs the simulator.

    Exits non-zero when any gated metric (throughput, latency p50/p95)
    lands beyond its declared tolerance; per-phase means are reported but
    never gated.  ``--out`` writes the report JSON (the CI artifact).
    """
    from repro.experiments.crossval import run_crossval
    from repro.experiments.farm import FarmError
    from repro.experiments.perfbench import SMOKE_SCENARIOS

    names = args.scenarios
    scale = "smoke" if args.smoke else "full"
    if names is None and args.smoke:
        names = SMOKE_SCENARIOS
    try:
        report = run_crossval(names, seed=args.seed, scale=scale,
                              jobs=args.jobs)
    except FarmError as error:
        print(f"crossval: scenario {error.label!r} failed in a worker:\n"
              f"{error.detail}", file=sys.stderr)
        return 1
    print(report.render())
    if args.out:
        report.write_json(args.out)
        print(f"crossval report written to {args.out}")
    return 0 if report.ok else 1


def _run_capacity(args) -> int:
    """The ``capacity`` subcommand: invert the phase model into a plan.

    Closed-form grid search — no simulation runs; a full plan answers in
    milliseconds.  Exits non-zero when no configuration in the grid
    sustains the target (so scripts can branch on feasibility).
    """
    from repro.analysis.planner import plan_capacity

    if args.target_tps is None:
        print("capacity: --target-tps RATE is required", file=sys.stderr)
        return 2
    plan = plan_capacity(
        target_tps=args.target_tps,
        max_p95=args.max_p95,
        policy=args.policy,
        orderer_kind=args.orderer if args.orderer is not None else "solo",
        statedb_kind=args.statedb if args.statedb is not None else "leveldb",
        workload_kind=args.plan_workload)
    if args.plan_json:
        print(json.dumps(plan.as_dict(), indent=2, sort_keys=True))
    else:
        print(plan.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(plan.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"capacity plan written to {args.out}")
    return 0 if plan.feasible else 1


def _results_for(experiment_id: str, mode: str, seed: int):
    if experiment_id == "tab1":
        return [run_table1()]
    if experiment_id in ("fig2", "fig3"):
        fig2, fig3 = run_fig2_fig3(mode=mode, seed=seed)
        return [fig2 if experiment_id == "fig2" else fig3]
    if experiment_id in ("fig4", "fig5"):
        fig4, fig5 = run_fig4_fig5(mode=mode, seed=seed)
        return [fig4 if experiment_id == "fig4" else fig5]
    if experiment_id in ("fig6", "fig7"):
        fig6, fig7 = run_fig6_fig7(mode=mode, seed=seed)
        return [fig6 if experiment_id == "fig6" else fig7]
    if experiment_id in ("tab2", "tab3"):
        tab2, tab3 = run_table2_table3(mode=mode, seed=seed)
        return [tab2 if experiment_id == "tab2" else tab3]
    if experiment_id == "fig8":
        return [run_fig8(mode=mode, seed=seed)]
    raise ValueError(f"unknown experiment {experiment_id!r}")


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fabric-repro",
        description="Regenerate the tables and figures of Wang & Chu, "
                    "'Performance Characterization and Bottleneck Analysis "
                    "of Hyperledger Fabric' (ICDCS 2020).")
    parser.add_argument("experiment",
                        choices=(EXPERIMENT_IDS
                                 + ["all", "trace", "lint",
                                    "check-determinism", "faults",
                                    "statedb", "perfbench", "obs-diff",
                                    "scale", "crossval", "capacity"]),
                        help="which artifact to regenerate; 'trace' for an "
                             "observed run with bottleneck attribution, "
                             "critical-path extraction, and the queueing "
                             "observatory; 'obs-diff' for the perf-"
                             "regression gate between two bench files; "
                             "'lint' for the simlint determinism analyzer; "
                             "'check-determinism' for same-seed double-run "
                             "schedule diffing; 'faults' for the "
                             "fault-injection recovery scenarios; 'statedb' "
                             "for the state-database backend ablation; "
                             "'perfbench' for wall-clock benchmarks of the "
                             "simulator itself with golden-digest checks; "
                             "'scale' for peers x channels x population "
                             "sweeps with aggregated client cohorts; "
                             "'crossval' for the analytic-model-vs-"
                             "simulator accuracy gate; 'capacity' for the "
                             "closed-form capacity planner")
    parser.add_argument("--full", action="store_true",
                        help="run the paper-scale sweep (slower)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default 1)")
    parser.add_argument("--plot", action="store_true",
                        help="render figure-shaped ASCII charts as well")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the perfbench / "
                             "crossval / scale matrices (default 1: run "
                             "inline; results and report order are "
                             "identical at any width)")
    trace_group = parser.add_argument_group(
        "trace options", "only used with the 'trace' experiment")
    trace_group.add_argument("--orderer", default=None,
                             choices=["solo", "kafka", "raft"],
                             help="ordering service kind (default solo for "
                                  "trace; all three for check-determinism)")
    trace_group.add_argument("--policy", default="AND5",
                             help="endorsement policy (default AND5)")
    trace_group.add_argument("--rate", type=float, default=250.0,
                             help="offered load in tx/s (default 250, past "
                                  "the AND5 validate capacity)")
    trace_group.add_argument("--duration", type=float, default=15.0,
                             help="workload duration in simulated seconds")
    trace_group.add_argument("--sample-interval", type=float, default=0.05,
                             help="utilization sampling period (seconds)")
    trace_group.add_argument("--top", type=int, default=12,
                             help="resources to list in the report")
    trace_group.add_argument("--trace-out", default=None, metavar="PATH",
                             help="write a Chrome trace_event JSON file "
                                  "(view in Perfetto / chrome://tracing)")
    trace_group.add_argument("--summary-out", default=None, metavar="PATH",
                             help="write the critical-path + queueing "
                                  "summary JSON (obs-diff comparable)")
    lint_group = parser.add_argument_group(
        "lint options",
        "only used with the 'lint' experiment; --out writes the report "
        "to a file and --baseline names an accepted-findings file "
        "(shared flags)")
    lint_group.add_argument("--path", dest="paths", action="append",
                            default=None, metavar="DIR",
                            help="file or directory to lint (repeatable; "
                                 "default: the installed repro package "
                                 "plus tests/ and benchmarks/ with the "
                                 "relaxed profile)")
    lint_group.add_argument("--project", dest="lint_project",
                            action="store_true",
                            help="also run the cross-file rules (SL012/"
                                 "SL014/SL015) over the project symbol "
                                 "table and call graph")
    lint_group.add_argument("--profile", dest="lint_profile",
                            default="strict",
                            choices=["strict", "relaxed"],
                            help="rule profile for explicitly given "
                                 "--path targets (default strict; the "
                                 "default sweep picks per-tree profiles "
                                 "itself)")
    lint_group.add_argument("--format", dest="lint_format",
                            default="text",
                            choices=["text", "json", "sarif"],
                            help="report format (default text; sarif is "
                                 "SARIF 2.1.0 for code-scanning upload)")
    lint_group.add_argument("--write-baseline", dest="write_baseline",
                            default=None, metavar="PATH",
                            help="accept the current findings: write "
                                 "their fingerprints to PATH and exit 0")
    check_group = parser.add_argument_group(
        "check-determinism options",
        "only used with the 'check-determinism' experiment; --orderer, "
        "--seed also apply")
    check_group.add_argument("--check-rate", type=float, default=None,
                             help="offered load for the double runs "
                                  "(default 60 tx/s)")
    check_group.add_argument("--check-duration", type=float, default=None,
                             help="workload duration for the double runs "
                                  "(default 4 simulated seconds)")
    check_group.add_argument("--digest-only", action="store_true",
                             help="skip per-event record keeping (lower "
                                  "memory; no first-divergence report)")
    check_group.add_argument("--statedb", default=None,
                             choices=["leveldb", "couchdb"],
                             help="state-database backend for the double "
                                  "runs (couchdb enables cache, bulk "
                                  "batching, and snapshots on the "
                                  "read-write workload)")
    faults_group = parser.add_argument_group(
        "faults options",
        "only used with the 'faults' experiment; --seed also applies")
    faults_group.add_argument("--scenario", default=None,
                              choices=["raft-leader-kill",
                                       "kafka-broker-kill",
                                       "peer-wipe-recover"],
                              help="run one scenario (default: all)")
    faults_group.add_argument("--smoke", action="store_true",
                              help="single run per scenario instead of the "
                                   "same-seed determinism double run; for "
                                   "perfbench: the scaled-down CI subset")
    perf_group = parser.add_argument_group(
        "perfbench options",
        "only used with the 'perfbench' experiment; --seed and --smoke "
        "also apply")
    perf_group.add_argument("--perf-scenario", dest="scenarios",
                            action="append", default=None, metavar="NAME",
                            help="benchmark one scenario (repeatable; "
                                 "default: all, or the smoke subset with "
                                 "--smoke)")
    perf_group.add_argument("--out", default=None, metavar="PATH",
                            help="write the {scenario: {wall_s, sim_tps, "
                                 "events_per_s}} benchmark JSON to PATH")
    perf_group.add_argument("--check-golden", action="store_true",
                            help="fail if any run's trace digest diverges "
                                 "from the committed golden value")
    perf_group.add_argument("--update-golden", action="store_true",
                            help="deliberately regenerate the committed "
                                 "golden digests from this run")
    perf_group.add_argument("--repeats", type=int, default=1, metavar="N",
                            help="time each scenario N times and keep the "
                                 "fastest wall clock (best-of-N; default 1). "
                                 "The schedule and digest are identical "
                                 "across repeats — only host noise varies")
    scale_group = parser.add_argument_group(
        "scale options",
        "only used with the 'scale' experiment; --seed, --smoke, and "
        "--out also apply.  Giving any of --peers/--channels/--users "
        "runs one point (defaults 100 peers, 4 channels, 1,000,000 "
        "users) instead of the sweep grid")
    scale_group.add_argument("--peers", type=int, default=None,
                             help="total peers (committing-only beyond "
                                  "the 10-peer endorsing core)")
    scale_group.add_argument("--channels", type=int, default=None,
                             help="number of channels (ch1..chN; every "
                                  "peer joins all of them)")
    scale_group.add_argument("--users", type=int, default=None,
                             help="aggregated population size; load is "
                                  "superposed-Poisson, so kernel cost is "
                                  "O(cohorts) regardless of this value")
    scale_group.add_argument("--cohorts", type=int, default=2,
                             help="cohorts per channel (default 2); each "
                                  "cohort is one kernel process and one "
                                  "client node")
    scale_group.add_argument("--scale-rate", type=float, default=150.0,
                             help="aggregate offered load in tx/s across "
                                  "all channels (default 150)")
    scale_group.add_argument("--scale-duration", type=float, default=8.0,
                             help="workload duration in simulated seconds "
                                  "(default 8)")
    capacity_group = parser.add_argument_group(
        "capacity options",
        "only used with the 'capacity' experiment; --policy, --orderer, "
        "--statedb, and --out also apply (crossval reuses --smoke, "
        "--seed, --perf-scenario, and --out)")
    capacity_group.add_argument("--target-tps", type=float, default=None,
                                help="throughput the deployment must "
                                     "sustain (tx/s)")
    capacity_group.add_argument("--max-p95", type=float, default=None,
                                help="end-to-end p95 latency bound in "
                                     "seconds (default: unbounded)")
    capacity_group.add_argument("--plan-workload", default="unique",
                                choices=["unique", "conflict"],
                                help="transaction shape to plan for "
                                     "(default unique)")
    capacity_group.add_argument("--plan-json", action="store_true",
                                help="print the plan as JSON instead of "
                                     "the text summary")
    diff_group = parser.add_argument_group(
        "obs-diff options", "only used with the 'obs-diff' experiment")
    diff_group.add_argument("--baseline", default=None, metavar="PATH",
                            help="baseline BENCH_*.json or trace-summary "
                                 "file (the accepted reference)")
    diff_group.add_argument("--candidate", default=None, metavar="PATH",
                            help="candidate measurement file to gate")
    diff_group.add_argument("--tolerance", type=float, default=0.05,
                            help="relative tolerance for deterministic "
                                 "metrics (default 0.05)")
    diff_group.add_argument("--tol-wall", type=float, default=None,
                            metavar="FRAC",
                            help="also gate wall-clock time at this "
                                 "relative tolerance (default: report "
                                 "only; wall time is machine-dependent)")
    diff_group.add_argument("--tol-events-rate", type=float, default=None,
                            metavar="FRAC",
                            help="also gate the kernel event rate "
                                 "(events_per_s) at this relative "
                                 "tolerance (default: report only; the "
                                 "rate is machine-dependent, gate it "
                                 "only against a same-host baseline)")
    diff_group.add_argument("--diff-json", action="store_true",
                            help="emit the full diff as JSON")
    diff_group.add_argument("--diff-verbose", action="store_true",
                            help="list every compared metric, not just "
                                 "regressions")
    args = parser.parse_args(argv)

    if args.experiment == "lint":
        return _run_lint(args)
    if args.experiment == "check-determinism":
        return _run_check_determinism(args)
    if args.experiment == "faults":
        return _run_faults(args)
    if args.experiment == "statedb":
        return _run_statedb(args)
    if args.experiment == "perfbench":
        return _run_perfbench(args)
    if args.experiment == "obs-diff":
        return _run_obs_diff(args)
    if args.experiment == "scale":
        return _run_scale(args)
    if args.experiment == "crossval":
        return _run_crossval(args)
    if args.experiment == "capacity":
        return _run_capacity(args)
    if args.experiment == "trace":
        if args.orderer is None:
            args.orderer = "solo"
        return _run_trace(args)
    mode = "full" if args.full else "quick"
    if args.experiment == "all":
        # Run paired experiments once each.
        results = [run_table1()]
        results.extend(run_fig2_fig3(mode=mode, seed=args.seed))
        results.extend(run_fig4_fig5(mode=mode, seed=args.seed))
        results.extend(run_fig6_fig7(mode=mode, seed=args.seed))
        results.extend(run_table2_table3(mode=mode, seed=args.seed))
        results.append(run_fig8(mode=mode, seed=args.seed))
    else:
        results = _results_for(args.experiment, mode, args.seed)
    for result in results:
        print(result.render())
        print()
        if args.plot:
            from repro.experiments.plots import plot_if_supported

            chart = plot_if_supported(result)
            if chart is not None:
                print(chart)
                print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
