"""Command-line entry point: regenerate any (or all) paper artifacts.

Usage::

    fabric-repro tab1
    fabric-repro fig2 --full
    fabric-repro all --seed 7
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.experiments.figures import (
    run_fig2_fig3,
    run_fig4_fig5,
    run_fig6_fig7,
    run_fig8,
)
from repro.experiments.tables import run_table1, run_table2_table3

EXPERIMENT_IDS = ["tab1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                  "tab2", "tab3", "fig8"]


def _results_for(experiment_id: str, mode: str, seed: int):
    if experiment_id == "tab1":
        return [run_table1()]
    if experiment_id in ("fig2", "fig3"):
        fig2, fig3 = run_fig2_fig3(mode=mode, seed=seed)
        return [fig2 if experiment_id == "fig2" else fig3]
    if experiment_id in ("fig4", "fig5"):
        fig4, fig5 = run_fig4_fig5(mode=mode, seed=seed)
        return [fig4 if experiment_id == "fig4" else fig5]
    if experiment_id in ("fig6", "fig7"):
        fig6, fig7 = run_fig6_fig7(mode=mode, seed=seed)
        return [fig6 if experiment_id == "fig6" else fig7]
    if experiment_id in ("tab2", "tab3"):
        tab2, tab3 = run_table2_table3(mode=mode, seed=seed)
        return [tab2 if experiment_id == "tab2" else tab3]
    if experiment_id == "fig8":
        return [run_fig8(mode=mode, seed=seed)]
    raise ValueError(f"unknown experiment {experiment_id!r}")


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fabric-repro",
        description="Regenerate the tables and figures of Wang & Chu, "
                    "'Performance Characterization and Bottleneck Analysis "
                    "of Hyperledger Fabric' (ICDCS 2020).")
    parser.add_argument("experiment", choices=EXPERIMENT_IDS + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--full", action="store_true",
                        help="run the paper-scale sweep (slower)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default 1)")
    parser.add_argument("--plot", action="store_true",
                        help="render figure-shaped ASCII charts as well")
    args = parser.parse_args(argv)

    mode = "full" if args.full else "quick"
    if args.experiment == "all":
        # Run paired experiments once each.
        results = [run_table1()]
        results.extend(run_fig2_fig3(mode=mode, seed=args.seed))
        results.extend(run_fig4_fig5(mode=mode, seed=args.seed))
        results.extend(run_fig6_fig7(mode=mode, seed=args.seed))
        results.extend(run_table2_table3(mode=mode, seed=args.seed))
        results.append(run_fig8(mode=mode, seed=args.seed))
    else:
        results = _results_for(args.experiment, mode, args.seed)
    for result in results:
        print(result.render())
        print()
        if args.plot:
            from repro.experiments.plots import plot_if_supported

            chart = plot_if_supported(result)
            if chart is not None:
                print(chart)
                print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
