"""ASCII line plots for regenerated figures.

The paper's figures are throughput/latency-vs-arrival-rate line charts;
``fabric-repro <fig> --plot`` renders the regenerated series in the same
shape directly in the terminal, one panel per group (e.g. per ordering
service), one glyph per series (e.g. OR vs AND).

Figures with an analytic counterpart also carry the stochastic phase
model's prediction as an overlay: a densely sampled dotted curve
(``.`` glyph) under the simulated points, so model-vs-simulation
agreement — and the predicted saturation knee — is visible directly in
the chart.
"""

from __future__ import annotations

import typing

Series = typing.Dict[str, typing.List[typing.Tuple[float, float]]]

GLYPHS = "o*x+#@"

#: Glyph for analytic-overlay series; dense sampling renders it as a
#: dashed-looking curve under the simulated measurement glyphs.
OVERLAY_GLYPH = "."


def ascii_plot(series: Series, width: int = 60, height: int = 16,
               title: str = "", x_label: str = "", y_label: str = "",
               styles: typing.Mapping[str, str] | None = None) -> str:
    """Render named (x, y) series as an ASCII chart.

    ``styles`` overrides the glyph for specific series (overlays); styled
    series are drawn first, so measurement glyphs win shared cells.
    Points from different unstyled series landing on the same cell show
    the glyph of the later series (legend order).  Axes are linear,
    anchored at 0 on y.
    """
    styles = dict(styles) if styles else {}
    if not series or all(not points for points in series.values()):
        return f"{title}\n(no data)"
    xs = [x for points in series.values() for x, _y in points]
    ys = [y for points in series.values() for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = 0.0, max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        return (height - 1 - row), column

    glyph_of: dict[str, str] = {}
    data_index = 0
    for name in series:
        if name in styles:
            glyph_of[name] = styles[name]
        else:
            glyph_of[name] = GLYPHS[data_index % len(GLYPHS)]
            data_index += 1

    drawing_order = ([name for name in series if name in styles]
                     + [name for name in series if name not in styles])
    for name in drawing_order:
        glyph = glyph_of[name]
        for x, y in series[name]:
            row, column = cell(x, y)
            grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    lines.append(f"{top_label:>8} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    bottom_label = f"{y_low:.3g}"
    lines.append(f"{bottom_label:>8} +" + "".join(grid[-1]))
    axis = " " * 9 + "+" + "-" * width
    lines.append(axis)
    x_axis_labels = (" " * 10 + f"{x_low:<.4g}"
                     + " " * max(1, width - 16) + f"{x_high:>.4g}")
    lines.append(x_axis_labels)
    if x_label or y_label:
        lines.append(" " * 10 + f"x: {x_label}   y: {y_label}")
    legend = "   ".join(f"{glyph_of[name]} {name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def plot_result(result, group_by: str, x: str, y: str,
                series_by: str | None = None,
                width: int = 60, height: int = 14,
                overlays: typing.Mapping[typing.Any, Series] | None = None,
                ) -> str:
    """Plot an :class:`~repro.experiments.report.ExperimentResult`.

    ``group_by`` names the column that splits panels, ``series_by`` the
    column that splits lines within a panel, ``x``/``y`` the axis columns.
    ``overlays`` maps panel values to extra analytic series drawn with
    :data:`OVERLAY_GLYPH` beneath the measured points.
    """
    columns = result.columns
    group_index = columns.index(group_by)
    x_index = columns.index(x)
    y_index = columns.index(y)
    series_index = columns.index(series_by) if series_by else None

    panels: dict[typing.Any, Series] = {}
    for row in result.rows:
        panel = panels.setdefault(row[group_index], {})
        series_name = (str(row[series_index]) if series_index is not None
                       else y)
        panel.setdefault(series_name, []).append(
            (float(row[x_index]), float(row[y_index])))

    rendered = []
    for group_value, series in panels.items():
        for points in series.values():
            points.sort()
        styles = None
        if overlays and group_value in overlays:
            overlay = overlays[group_value]
            styles = {name: OVERLAY_GLYPH for name in overlay}
            series = {**overlay, **series}
        rendered.append(ascii_plot(
            series, width=width, height=height,
            title=f"[{result.experiment_id}] {group_by}={group_value}",
            x_label=x, y_label=y, styles=styles))
    return "\n\n".join(rendered)


#: How to plot each experiment id: (group_by, x, y, series_by).
PLOT_SPECS = {
    "fig2": ("orderer", "arrival_rate", "throughput_tps", "policy"),
    "fig3": ("orderer", "arrival_rate", "latency_s", "policy"),
    "fig4": ("orderer", "arrival_rate", "validate_tps", None),
    "fig5": ("orderer", "arrival_rate", "validate_tps", None),
    "fig6": ("orderer", "arrival_rate", "order_validate_latency_s", None),
    "fig7": ("orderer", "arrival_rate", "order_validate_latency_s", None),
    "fig8": ("orderer", "num_osns", "throughput_tps", "zk_and_brokers"),
    "tab2": ("policy", "endorsing_peers", "throughput_tps", None),
}


def plot_if_supported(result) -> str | None:
    """Plot a result if a spec exists for it; None otherwise.

    Figures with an analytic counterpart (Figs. 2/3/6/7) get the phase
    model's prediction overlaid as a dotted curve.
    """
    spec = PLOT_SPECS.get(result.experiment_id)
    if spec is None:
        return None
    from repro.experiments.figures import analytic_overlay

    group_by, x, y, series_by = spec
    return plot_result(result, group_by=group_by, x=x, y=y,
                       series_by=series_by,
                       overlays=analytic_overlay(result))
