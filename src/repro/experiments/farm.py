"""Multiprocess scenario farm: independent scenarios across host cores.

The perfbench / crossval / scale matrices are embarrassingly parallel:
every scenario builds its own network from an explicit seed and shares no
state with its neighbours.  This module fans a list of such tasks out over
a pool of worker processes while keeping the *result contract* identical
to the sequential path:

- **Deterministic merge order.**  Results are returned in task-submission
  order, no matter which child finishes first — so reports, bench files,
  and golden checks are byte-stable across ``--jobs`` values (wall-clock
  fields aside, which measure the host, not the schedule).
- **Seeded children.**  A task carries everything the worker needs (name,
  seed, scale); children inherit no ambient randomness, so a scenario
  computes the same digests and metrics in any process.
- **Loud failures.**  A child that raises — or dies outright — surfaces as
  :class:`FarmError` naming the failed scenario, carrying the child's
  traceback text; drivers exit non-zero instead of silently dropping the
  scenario from the report.

``jobs <= 1`` never touches ``multiprocessing``: the tasks run inline in
this process, which is both the no-dependency fallback and the reference
behaviour the parallel path is tested against.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import traceback
import typing

__all__ = ["FarmError", "run_farm"]

T = typing.TypeVar("T")
R = typing.TypeVar("R")


class FarmError(RuntimeError):
    """A farmed scenario failed; ``label`` names which one."""

    def __init__(self, label: str, detail: str) -> None:
        super().__init__(f"farm task {label!r} failed:\n{detail}")
        self.label = label
        self.detail = detail


def _guarded(worker: typing.Callable[[T], R], label: str, task: T
             ) -> tuple[str, typing.Any]:
    """Run one task in a child, capturing the traceback as data.

    Exceptions don't always pickle faithfully across process boundaries;
    the traceback string always does, and FarmError only needs text.
    ``KeyboardInterrupt``/``SystemExit`` deliberately propagate: they
    kill the worker, which the pool reports as a broken process.
    """
    try:
        return ("ok", worker(task))
    # Not swallowed: the traceback crosses the process boundary as data
    # and re-surfaces in the parent as FarmError.
    except Exception:  # simlint: disable=SL005
        return ("error", f"{label}\n{traceback.format_exc()}")


def run_farm(worker: typing.Callable[[T], R],
             tasks: typing.Sequence[T],
             jobs: int = 1,
             labels: typing.Sequence[str] | None = None) -> list[R]:
    """Apply ``worker`` to every task, ``jobs`` processes wide.

    ``worker`` and each task must be picklable (module-level function,
    plain-data task) when ``jobs > 1``.  ``labels`` names tasks in error
    reports; defaults to ``str(task)``.  Results come back in task order.

    Raises :class:`FarmError` for the first (in task order) failed task.
    Inline runs stop at the failure; pool runs let already-submitted
    scenarios finish before raising, so one bad scenario does not waste
    the rest of the matrix's work.
    """
    if labels is None:
        labels = [str(task) for task in tasks]
    if len(labels) != len(tasks):
        raise ValueError(
            f"{len(labels)} labels for {len(tasks)} tasks")
    if jobs <= 1 or len(tasks) <= 1:
        # Inline reference path: same calls, same order, no pool.
        results = []
        for label, task in zip(labels, tasks):
            try:
                results.append(worker(task))
            except Exception:
                raise FarmError(label, traceback.format_exc()) from None
        return results
    # Fork start method: children inherit the loaded interpreter (no
    # re-import storm per scenario).  Falls back to the platform default
    # where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    outcomes: list[tuple[str, typing.Any] | None] = [None] * len(tasks)
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)), mp_context=context) as pool:
        futures = [pool.submit(_guarded, worker, label, task)
                   for label, task in zip(labels, tasks)]
        for index, future in enumerate(futures):
            try:
                outcomes[index] = future.result()
            except concurrent.futures.process.BrokenProcessPool:
                # The child died without returning (segfault, kill, OOM).
                outcomes[index] = (
                    "error",
                    f"{labels[index]}\nworker process died before "
                    f"returning a result")
    results = []
    for outcome in outcomes:
        assert outcome is not None
        status, payload = outcome
        if status == "error":
            label, _, detail = payload.partition("\n")
            raise FarmError(label, detail)
        results.append(payload)
    return results
