"""Wall-clock benchmarks of the simulator itself, with golden digests.

Every paper artifact is a sweep of full network simulations, so the
wall-clock cost of the pure-Python event loop bounds how many scenarios we
can explore.  This module measures that cost directly: it times reference
runs across the configuration matrix the paper cares about (solo/raft/kafka
ordering, OR and AND endorsement policies, LevelDB and CouchDB state
backends) and reports, per scenario:

- ``wall_s``       — host seconds for the run (the quantity being optimised);
- ``sim_tps``      — committed transactions per *simulated* second, which
  must not move when only the host-side implementation changes;
- ``events_per_s`` — kernel events popped per host second, the simulator's
  native throughput metric (independent of the modelled workload).

Correctness oracle: each run executes with a
:class:`~repro.sim.sanitizer.TraceDigest` attached, and the resulting
digest is compared against a *golden* value committed under
``tests/fabric/golden/``.  A matching digest proves a refactor changed
speed but not the event schedule (same pops, same order, same times).
Optimisations that intentionally remove bookkeeping events (the
uncontended-resource fast path, daemon/eager processes) change the digest
by construction; those were validated instead by bit-identical
:class:`~repro.metrics.collector.PhaseMetrics` across the whole scenario
matrix before regenerating the goldens (see EXPERIMENTS.md).  Regenerating
is always a deliberate act: ``repro perfbench --update-golden`` or
``pytest --update-golden``.

CLI::

    repro perfbench                       # full scenarios, report only
    repro perfbench --smoke               # scaled-down subset (CI gate)
    repro perfbench --check-golden        # fail on any digest divergence
    repro perfbench --out BENCH_PR10.json # write the benchmark trajectory
    repro perfbench --repeats 3           # best-of-3 timing (recording runs)
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pathlib
import time
import typing

from repro.common.config import StateDBConfig
from repro.experiments.farm import run_farm
from repro.experiments.runner import make_topology, make_workload
from repro.fabric.network import FabricNetwork
from repro.sim.sanitizer import TraceDigest

#: Seed used for every golden digest; changing it invalidates the goldens.
GOLDEN_SEED = 1

#: Benchmark trajectory file for this PR (see ISSUE 10 / EXPERIMENTS.md).
BENCH_FILE = "BENCH_PR10.json"


@dataclasses.dataclass(frozen=True)
class PerfScenario:
    """One benchmarked configuration at full (paper-style) scale."""

    name: str
    orderer_kind: str
    policy: str
    statedb_kind: str = "leveldb"
    rate: float = 250.0
    duration: float = 15.0
    peers: int = 10
    #: Channels in the deployment; >1 switches to the scale-out topology
    #: (committing-only fleet beyond the endorsing core, relay-tree gossip).
    channels: int = 1
    #: Aggregated client population; >0 drives the run through
    #: :class:`~repro.client.population.ClientPopulation` cohorts instead
    #: of per-client workload generators.
    population_users: int = 0

    def at_scale(self, scale: str) -> "PerfScenario":
        """The scenario at ``"full"`` or scaled-down ``"smoke"`` size.

        Smoke scale matches the determinism-check defaults (4 peers,
        60 tx/s for 4 simulated seconds): every phase of the pipeline is
        exercised on every backend while a run stays under a second.
        Population scenarios keep 12 peers at smoke so the scale-out
        topology (committing-only peers, relay-tree gossip) stays covered;
        the user count is untouched — population size is O(1) in cost.
        """
        if scale == "full":
            return self
        if scale != "smoke":
            raise ValueError(f"unknown scale {scale!r}")
        peers = 12 if self.population_users > 0 else 4
        return dataclasses.replace(self, rate=60.0, duration=4.0,
                                   peers=peers)

    def statedb_config(self) -> StateDBConfig:
        if self.statedb_kind == "couchdb":
            # The representative CouchDB deployment: Thakkar-style read
            # cache and bulk batching on, periodic snapshots.
            return StateDBConfig(kind="couchdb", cache=True, bulk=True,
                                 snapshot_interval=3)
        return StateDBConfig(kind=self.statedb_kind)


def _scenario_list() -> list[PerfScenario]:
    return [
        PerfScenario("solo-or-leveldb", "solo", "OR10"),
        # The reference Fig. 2-style point: Solo under AND5 driven past the
        # validate-phase capacity — the paper's (and our) worst hot path.
        PerfScenario("solo-and-leveldb", "solo", "AND5"),
        PerfScenario("raft-or-leveldb", "raft", "OR10"),
        PerfScenario("raft-and-leveldb", "raft", "AND5"),
        PerfScenario("kafka-or-leveldb", "kafka", "OR10"),
        PerfScenario("kafka-and-leveldb", "kafka", "AND5"),
        PerfScenario("solo-and-couchdb", "solo", "AND5",
                     statedb_kind="couchdb"),
        PerfScenario("raft-and-couchdb", "raft", "AND5",
                     statedb_kind="couchdb"),
        # The scale-out configuration: a committing fleet past the
        # endorsing core, four channels, and a million-user aggregated
        # population — the wall-clock proof that population size is a
        # pure parameter (its cost tracks cohorts and rate, not users).
        PerfScenario("raft-population-scale", "raft", "OR(1..n)",
                     peers=60, channels=4, population_users=1_000_000),
    ]


SCENARIOS: dict[str, PerfScenario] = {
    scenario.name: scenario for scenario in _scenario_list()}

#: The scenario whose wall-clock time anchors the PR-5 speedup target.
REFERENCE_SCENARIO = "solo-and-leveldb"

#: CI smoke subset: one scaled-down scenario per orderer type, plus the
#: CouchDB backend so both state databases stay covered.
SMOKE_SCENARIOS = ["solo-and-leveldb", "raft-and-leveldb",
                   "kafka-or-leveldb", "solo-and-couchdb",
                   "raft-population-scale"]


@dataclasses.dataclass
class PerfResult:
    """One timed, digested scenario run."""

    scenario: str
    scale: str
    seed: int
    wall_s: float
    sim_tps: float
    events_per_s: float
    events: int
    digest: str
    #: Golden verdict: True/False once checked, None when unchecked.
    golden_ok: bool | None = None
    #: The committed golden digest, when a check ran and one existed.
    golden_expected: str | None = None

    def bench_entry(self) -> dict[str, typing.Any]:
        """The ``BENCH_PR10.json`` row for this run."""
        return {
            "wall_s": round(self.wall_s, 4),
            "sim_tps": round(self.sim_tps, 2),
            "events_per_s": round(self.events_per_s, 1),
            "events": self.events,
            "digest": self.digest,
            "scale": self.scale,
            "seed": self.seed,
        }


def _build_network(scenario: PerfScenario, seed: int,
                   observe: bool = False,
                   scheduler: str = "array") -> FabricNetwork:
    if scenario.population_users > 0:
        from repro.experiments.scale import (
            make_scale_topology,
            make_scale_workload,
        )

        topology = make_scale_topology(scenario.peers, scenario.channels,
                                       orderer_kind=scenario.orderer_kind)
        workload = make_scale_workload(scenario.population_users,
                                       scenario.rate, scenario.duration)
    else:
        topology = make_topology(scenario.orderer_kind, scenario.policy,
                                 scenario.peers,
                                 statedb=scenario.statedb_config())
        workload = make_workload(scenario.rate, scenario.duration)
    # Observed builds disable the sampler: the tracer and monitors are
    # schedule-neutral, the sampler's periodic timeouts are not.
    return FabricNetwork(topology, workload, seed=seed, observe=observe,
                         observe_sampler=False, scheduler=scheduler)


def run_scenario(name: str, seed: int = GOLDEN_SEED,
                 scale: str = "full", repeats: int = 1) -> PerfResult:
    """Benchmark one scenario: timed run(s) plus a digested companion run.

    The timed run executes without the determinism sanitizer attached, so
    ``wall_s`` measures the simulator itself rather than the SHA-256
    digesting (which roughly doubles a run's cost).  A second run from the
    same seed then produces the :class:`TraceDigest` compared against the
    golden value — same seed, same schedule, so the digest certifies the
    timed run too.

    ``repeats > 1`` re-times the identical run and keeps the *fastest*
    wall clock (best-of-N).  Every repeat computes the same schedule, the
    same metrics, and the same digest — only host noise varies — so
    best-of-N estimates the run's intrinsic cost, the quantity the bench
    trajectory tracks.  The garbage collector is paused around each timed
    section for the same reason: collection pauses measure the host's
    allocation history, not the simulator.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    scenario = SCENARIOS[name].at_scale(scale)
    wall = float("inf")
    gc_was_enabled = gc.isenabled()
    for _ in range(repeats):
        timed = _build_network(scenario, seed)
        if gc_was_enabled:
            gc.collect()
            gc.disable()
        try:
            # Wall-clock reads are the whole point of this harness: the
            # measured quantity is host time, never fed back into the
            # simulation.
            started = time.perf_counter()  # simlint: disable=SL002
            metrics = timed.run_workload()
            elapsed = time.perf_counter() - started  # simlint: disable=SL002
        finally:
            if gc_was_enabled:
                gc.enable()
        wall = min(wall, elapsed)
    events = timed.sim.events_processed
    return PerfResult(
        scenario=name, scale=scale, seed=seed, wall_s=wall,
        sim_tps=metrics.overall_throughput,
        events_per_s=events / wall if wall > 0 else 0.0,
        events=events, digest=digest_scenario(name, seed=seed, scale=scale))


def digest_scenario(name: str, seed: int = GOLDEN_SEED,
                    scale: str = "full", observe: bool = False,
                    scheduler: str = "array") -> str:
    """The trace digest of one (untimed) scenario run.

    This is the digest-only half of :func:`run_scenario`, exposed so the
    golden-digest tests can check schedules without paying for a second,
    timed run.  ``observe=True`` runs with span tracing and resource
    monitors attached (sampler off): the digest must not change, which is
    the standing proof that observability is schedule-neutral.
    ``scheduler="heap"`` replays the run on the legacy binary-heap
    scheduler — the oracle the differential scheduler tests diff the
    array scheduler against.
    """
    scenario = SCENARIOS[name].at_scale(scale)
    network = _build_network(scenario, seed, observe=observe,
                             scheduler=scheduler)
    digest = TraceDigest(network.sim, keep_records=False).attach()
    try:
        network.run_workload()
    finally:
        digest.detach()
    return digest.hexdigest


# ----------------------------------------------------------------------
# Golden digests
# ----------------------------------------------------------------------

def golden_key(name: str, scale: str) -> str:
    return f"{name}@{scale}"


def golden_path() -> pathlib.Path:
    """Location of the committed golden digests.

    ``REPRO_GOLDEN_DIR`` overrides the default (the repository's
    ``tests/fabric/golden/``, resolved relative to this file so the path
    works from any working directory).
    """
    override = os.environ.get("REPRO_GOLDEN_DIR")
    if override:
        return pathlib.Path(override) / "digests.json"
    return (pathlib.Path(__file__).resolve().parents[3]
            / "tests" / "fabric" / "golden" / "digests.json")


def load_goldens(path: pathlib.Path | None = None) -> dict[str, str]:
    path = path if path is not None else golden_path()
    if not path.exists():
        return {}
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def save_goldens(goldens: dict[str, str],
                 path: pathlib.Path | None = None) -> pathlib.Path:
    path = path if path is not None else golden_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(sorted(goldens.items())), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# The benchmark driver
# ----------------------------------------------------------------------

@dataclasses.dataclass
class PerfBenchReport:
    """All scenario results of one ``repro perfbench`` invocation."""

    results: list[PerfResult]
    scale: str
    seed: int
    checked: bool

    @property
    def ok(self) -> bool:
        """False iff a golden check ran and found a divergence."""
        return not any(result.golden_ok is False for result in self.results)

    def write_bench_file(self, path: str | pathlib.Path) -> None:
        payload = {result.scenario: result.bench_entry()
                   for result in self.results}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        width = max(len(result.scenario) for result in self.results)
        lines = [f"perfbench ({self.scale} scale, seed {self.seed})",
                 f"{'scenario':<{width}}  {'wall_s':>8}  {'sim_tps':>8}  "
                 f"{'events/s':>10}  golden"]
        for result in self.results:
            if result.golden_ok is None:
                verdict = "-"
            elif result.golden_ok:
                verdict = "ok"
            else:
                verdict = ("MISSING" if result.golden_expected is None
                           else "DIVERGED")
            lines.append(
                f"{result.scenario:<{width}}  {result.wall_s:>8.2f}  "
                f"{result.sim_tps:>8.1f}  {result.events_per_s:>10.0f}  "
                f"{verdict}")
        return "\n".join(lines)


def _scenario_worker(task: tuple[str, int, str, int]) -> PerfResult:
    """Farm worker: one scenario, rebuilt from its explicit task tuple."""
    name, seed, scale, repeats = task
    return run_scenario(name, seed=seed, scale=scale, repeats=repeats)


def run_perfbench(names: typing.Sequence[str] | None = None,
                  seed: int = GOLDEN_SEED, scale: str = "full",
                  check_golden: bool = False,
                  update_golden: bool = False,
                  jobs: int = 1, repeats: int = 1) -> PerfBenchReport:
    """Run ``names`` (default: every scenario) at ``scale``.

    With ``check_golden``, each result is compared against the committed
    golden digest (a missing golden entry fails the check: a new scenario
    must be golden-ed deliberately).  With ``update_golden``, the goldens
    file is rewritten with the observed digests instead.  ``jobs > 1``
    farms scenarios across processes (:mod:`repro.experiments.farm`);
    digests, metrics, and report order are identical either way.
    ``repeats`` is the best-of-N count per scenario (see
    :func:`run_scenario`).
    """
    if names is None:
        names = list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown perfbench scenario(s): {unknown}; "
                       f"known: {sorted(SCENARIOS)}")
    results = run_farm(_scenario_worker,
                       [(name, seed, scale, repeats) for name in names],
                       jobs=jobs, labels=list(names))
    if update_golden:
        goldens = load_goldens()
        for result in results:
            goldens[golden_key(result.scenario, result.scale)] = result.digest
        save_goldens(goldens)
        for result in results:
            result.golden_ok = True
    elif check_golden:
        goldens = load_goldens()
        for result in results:
            expected = goldens.get(golden_key(result.scenario, result.scale))
            result.golden_expected = expected
            # A missing golden fails the check too: a new scenario must be
            # golden-ed deliberately via --update-golden.
            result.golden_ok = expected == result.digest
    return PerfBenchReport(results=results, scale=scale, seed=seed,
                           checked=check_golden or update_golden)
