"""Table regeneration: Tables I, II, and III of the paper."""

from __future__ import annotations

from repro.common.config import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_point, search_peak
from repro.runtime.costs import CostModel

#: The paper's Table II (throughput, tps) — "-" cells were not measured.
PAPER_TABLE2 = {
    ("OR10", 1): 50, ("OR10", 3): 150, ("OR10", 5): 246,
    ("OR10", 7): 310, ("OR10", 10): 300,
    ("OR3", 1): 50, ("OR3", 3): 150,
    ("AND5", 1): 50, ("AND5", 3): 150, ("AND5", 5): 210,
    ("AND3", 1): 50, ("AND3", 3): 150,
}

#: The paper's Table III: (execute latency, order&validate latency).
PAPER_TABLE3 = {
    ("OR10", 1): (0.25, 0.551), ("OR10", 3): (0.28, 0.505),
    ("OR10", 5): (0.30, 0.432), ("OR10", 7): (0.32, 0.660),
    ("OR10", 10): (0.32, 0.80),
    ("OR3", 1): (0.25, 0.551), ("OR3", 3): (0.28, 0.505),
    ("AND5", 1): (0.30, 0.55), ("AND5", 3): (0.39, 0.43),
    ("AND5", 5): (0.57, 0.70),
    ("AND3", 1): (0.285, 0.55), ("AND3", 3): (0.38, 0.43),
}

#: The configurations measured per policy (peer counts with paper values).
TABLE2_CELLS = [
    ("OR10", [1, 3, 5, 7, 10]),
    ("OR3", [1, 3]),
    ("AND5", [1, 3, 5]),
    ("AND3", [1, 3]),
]


def run_table1() -> ExperimentResult:
    """Table I: the experimental configuration, paper vs simulation."""
    topology = TopologyConfig()
    orderer = OrdererConfig()
    workload = WorkloadConfig()
    costs = CostModel()
    rows = [
        ["CPU", "i7-2600 3.4GHz / i7-920 2.67GHz",
         f"{costs.peer_cores}-core simulated machines, calibrated costs"],
        ["Memory", "4 GB DDR3", "not a constraint in simulation"],
        ["Network", "1 Gbps Ethernet",
         f"{topology.network_bandwidth * 8 / 1e9:.0f} Gbps, "
         f"{topology.network_latency * 1e6:.0f} us latency"],
        ["Hard disk", "SEAGATE ST3250310AS",
         f"commit I/O {costs.commit_per_block_io * 1e3:.0f} ms/block + "
         f"{costs.commit_per_tx_io * 1e3:.2f} ms/tx"],
        ["Fabric version", "1.4.3 LTS", "v1.4 execute-order-validate model"],
        ["SDK", "fabric-sdk-node 1.0.0 / Node.js 8.16.2",
         f"client CPU {1e3 * (costs.client_prep_cpu + costs.client_collect_cpu + costs.client_submit_cpu):.0f} ms/tx "
         f"(~{costs.client_capacity():.0f} tps per client)"],
        ["BatchSize", "100", str(orderer.batch_size)],
        ["BatchTimeout", "1 s", f"{orderer.batch_timeout} s"],
        ["Kafka partition/replication", "1 / 3",
         f"{orderer.partitions} / {orderer.replication_factor}"],
        ["Ordering timeout", "3 s", f"{workload.ordering_timeout} s"],
        ["TLS", "enabled", "enabled" if topology.tls_enabled else "disabled"],
    ]
    return ExperimentResult(
        experiment_id="tab1",
        title="Experimental configuration (paper testbed vs simulation)",
        columns=["item", "paper", "simulation"],
        rows=rows)


def _rates_for(policy: str, peers: int, mode: str) -> list[float]:
    """Arrival rates bracketing the expected peak for a peak search."""
    client_cap = 50.0 * peers
    validate_cap = 320.0 if policy.startswith("OR") else 225.0
    expected = min(client_cap, validate_cap)
    if mode == "quick":
        return [expected, expected * 1.25]
    return [expected * 0.75, expected, expected * 1.25, expected * 1.5]


def run_table2_table3(mode: str = "quick", seed: int = 1,
                      orderer_kind: str = "solo"
                      ) -> tuple[ExperimentResult, ExperimentResult]:
    """Tables II and III: peak throughput and latency vs #endorsing peers.

    Paper findings reproduced: throughput scales ~50 tps per endorsing peer
    (one client per peer) under every policy, capped by the validate phase
    at ~300 tps (OR) / ~210 tps (AND5); latency rises with utilization.
    Latencies are measured at ~85% of the measured peak, below saturation.
    """
    duration = 12.0 if mode == "quick" else 25.0
    throughput_rows = []
    latency_rows = []
    for policy, peer_counts in TABLE2_CELLS:
        for peers in peer_counts:
            rates = _rates_for(policy, peers, mode)
            peak, _points = search_peak(orderer_kind, policy, peers, rates,
                                        duration=duration, seed=seed)
            paper_peak = PAPER_TABLE2.get((policy, peers))
            throughput_rows.append([policy, peers, peak, paper_peak])
            near_peak = run_point(orderer_kind, policy, max(10.0, 0.85 * peak),
                                  peers=peers, duration=duration, seed=seed)
            paper_latency = PAPER_TABLE3.get((policy, peers), (None, None))
            latency_rows.append([
                policy, peers,
                near_peak.metrics.execute_latency, paper_latency[0],
                near_peak.metrics.order_validate_latency, paper_latency[1]])
    table2 = ExperimentResult(
        experiment_id="tab2",
        title="Peak throughput vs number of endorsing peers",
        columns=["policy", "endorsing_peers", "throughput_tps",
                 "paper_tps"],
        rows=throughput_rows,
        notes=["ANDx with fewer than x deployed peers degrades to AND over "
               "the deployed peers (DESIGN.md §3)"])
    table3 = ExperimentResult(
        experiment_id="tab3",
        title="Latency vs number of endorsing peers (at ~85% of peak)",
        columns=["policy", "endorsing_peers", "execute_latency_s",
                 "paper_execute_s", "order_validate_latency_s",
                 "paper_order_validate_s"],
        rows=latency_rows)
    return table2, table3
