"""State-database backend ablation: the Thakkar-shaped result.

Thakkar et al. ("Performance Benchmarking and Optimizing Hyperledger
Fabric", PAPERS.md) measure that switching the state database from
GoLevelDB to CouchDB cuts peak throughput by roughly 3×, and that two peer
optimizations — a read cache and bulk read/write batching — recover most of
the gap.  This experiment reproduces that shape on the simulator:

1. sweep arrival rates per backend variant on a read-write (conflict)
   workload and report the peak committed throughput;
2. rerun the plain-CouchDB peak with observability attached and confirm
   the bottleneck moved from the VSCC worker pool to the state database
   in the validate/commit phase.

``repro statedb`` renders the table and exits non-zero when the expected
ordering (LevelDB > CouchDB+cache+bulk > plain CouchDB) or the CouchDB
bottleneck attribution does not hold.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import StateDBConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_traced_point, search_peak

#: The workload: every transaction reads one key and writes it back
#: (kvstore "update"), so both the backend read path (endorsement + MVCC)
#: and write path (commit) are on the critical path.
WORKLOAD_KIND = "conflict"
POLICY = "OR(1..n)"
PEERS = 10

#: Sweep rates per variant.  Fast backends peak near the OR validate cap
#: (~300 tps); plain CouchDB saturates its serial state DB far earlier.
FAST_RATES = {"quick": [250.0, 330.0], "full": [200.0, 250.0, 300.0, 330.0]}
SLOW_RATES = {"quick": [60.0, 90.0], "full": [45.0, 60.0, 75.0, 90.0]}
DURATIONS = {"quick": 10.0, "full": 15.0}


@dataclasses.dataclass(frozen=True)
class StateDBVariant:
    """One ablation arm: a backend plus its optimization toggles."""

    label: str
    config: StateDBConfig
    fast: bool  # sweeps the high-rate grid (near the VSCC cap)


VARIANTS = (
    StateDBVariant("goleveldb", StateDBConfig(kind="leveldb"), fast=True),
    StateDBVariant("couchdb", StateDBConfig(kind="couchdb"), fast=False),
    StateDBVariant(
        "couchdb+cache+bulk",
        StateDBConfig(kind="couchdb", cache=True, bulk=True), fast=True),
)


@dataclasses.dataclass
class StateDBAblation:
    """Peaks, bottleneck attribution, and the pass/fail verdict."""

    result: ExperimentResult
    peaks: dict[str, float]                    # variant label -> peak tps
    couch_bottleneck: str                      # resource name
    couch_phase: str                           # phase of that resource
    couch_utilization: float

    @property
    def ordering_ok(self) -> bool:
        """LevelDB > CouchDB+cache+bulk > plain CouchDB (Thakkar shape)."""
        return (self.peaks["goleveldb"]
                > self.peaks["couchdb+cache+bulk"]
                > self.peaks["couchdb"])

    @property
    def attribution_ok(self) -> bool:
        """Plain CouchDB saturates its state DB inside validate/commit."""
        return ("statedb" in self.couch_bottleneck
                and self.couch_phase == "validate"
                and self.couch_utilization >= 0.8)

    @property
    def ok(self) -> bool:
        return self.ordering_ok and self.attribution_ok


def run_statedb_ablation(mode: str = "quick",
                         seed: int = 1) -> StateDBAblation:
    """Run the three-variant ablation and build the result table."""
    duration = DURATIONS[mode]
    peaks: dict[str, float] = {}
    rows: list[list[object]] = []
    for variant in VARIANTS:
        rates = (FAST_RATES if variant.fast else SLOW_RATES)[mode]
        peak, _ = search_peak(
            "solo", POLICY, PEERS, rates, duration=duration, seed=seed,
            workload_kind=WORKLOAD_KIND, statedb=variant.config)
        peaks[variant.label] = peak
        rows.append([variant.label,
                     "yes" if variant.config.cache else "no",
                     "yes" if variant.config.bulk else "no",
                     peak])
    # Bottleneck attribution for the plain-CouchDB arm, driven past its
    # peak so the saturated resource is unambiguous.
    couch_rates = SLOW_RATES[mode]
    traced = run_traced_point(
        "solo", policy=POLICY, rate=max(couch_rates), peers=PEERS,
        duration=duration, seed=seed, workload_kind=WORKLOAD_KIND,
        statedb=StateDBConfig(kind="couchdb"))
    bottleneck = traced.report.bottleneck
    name = bottleneck.name if bottleneck is not None else ""
    phase = bottleneck.phase if bottleneck is not None else ""
    utilization = bottleneck.utilization if bottleneck is not None else 0.0
    for row, variant in zip(rows, VARIANTS):
        if variant.label == "couchdb":
            row.extend([name, phase])
        else:
            row.extend(["-", "-"])
    ablation = StateDBAblation(
        result=ExperimentResult(
            experiment_id="statedb",
            title="State-database backend ablation "
                  "(Thakkar et al., read-write workload)",
            columns=["backend", "cache", "bulk", "peak tps",
                     "bottleneck", "phase"],
            rows=rows,
            notes=[
                f"workload: {WORKLOAD_KIND} (1 read + 1 write per tx), "
                f"{POLICY}, solo orderer, {PEERS} peers",
                f"couchdb bottleneck: {name} "
                f"(utilization {utilization:.3f}, phase {phase or '-'})",
            ]),
        peaks=peaks,
        couch_bottleneck=name,
        couch_phase=phase,
        couch_utilization=utilization)
    verdict = "holds" if ablation.ok else "VIOLATED"
    ablation.result.notes.append(
        f"expected ordering goleveldb > couchdb+cache+bulk > couchdb: "
        f"{verdict}")
    return ablation
