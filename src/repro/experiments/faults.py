"""Fault-injection experiments: consensus leader-kill recovery curves.

Three scenarios exercise the network under the failures it is built to
survive:

- ``raft-leader-kill`` — crash the current Raft leader OSN mid-run; the
  followers detect the silent leader, elect a successor within the election
  timeout, and clients resubmit the transactions the dead leader ate;
- ``kafka-broker-kill`` — crash the partition-leader broker; ZooKeeper
  expires its session, promotes the next in-sync replica, and the OSNs
  re-subscribe their consume streams;
- ``peer-wipe-recover`` — crash an endorsing peer whose CouchDB state
  database does not survive the crash (``wipe_on_crash``); on recovery the
  peer restores its latest checkpoint snapshot and replays only the blocks
  committed after it, instead of re-executing the chain from genesis.

Each scenario reports the recovery metrics
(:class:`~repro.faults.recovery.RecoveryReport`) against explicit pass
criteria, and — because the fault schedule runs on the simulation clock
with seeded randomness — replays byte-identically from the same seed,
which :func:`check_scenario_determinism` verifies with a double run.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import StateDBConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.experiments.runner import make_topology
from repro.fabric.network import FabricNetwork
from repro.faults import FaultSchedule, RecoveryReport
from repro.sim.sanitizer import (
    DeterminismReport,
    TraceDigest,
    digest_run,
    run_twice_and_diff,
)

#: Minimum fraction of fault-time in-flight transactions that must commit.
MIN_RECOVERED_FRACTION = 0.95


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """One named fault experiment: topology, workload, and schedule."""

    name: str
    orderer_kind: str
    description: str
    policy: str = "AND2"
    peers: int = 4
    rate: float = 60.0
    duration: float = 12.0
    warmup: float = 2.0
    cooldown: float = 1.0
    #: Fault times relative to workload start (the schedule itself runs on
    #: the simulation clock, so stabilization time is added when built).
    crash_offset: float = 4.0
    recover_offset: float = 8.0
    #: Pass criterion: re-election must complete within this many seconds.
    max_reelection: float = 1.5
    ordering_timeout: float = 1.5
    max_resubmits: int = 4
    resubmit_backoff: float = 0.25
    #: What to kill: an alias (``"@leader"``) or a concrete node name.
    target: str = "@leader"
    #: Leader-kill scenarios expect a re-election; peer kills do not.
    expect_reelection: bool = True
    #: Peer-wipe scenarios expect a snapshot-based state-DB catch-up.
    expect_catchup: bool = False
    statedb: StateDBConfig | None = None
    workload_kind: str = "unique"

    @property
    def crash_time(self) -> float:
        """Absolute simulated crash time (workload starts after
        stabilization)."""
        return FabricNetwork.STABILIZATION + self.crash_offset

    @property
    def recover_time(self) -> float:
        return FabricNetwork.STABILIZATION + self.recover_offset

    def build_schedule(self) -> FaultSchedule:
        return (FaultSchedule()
                .crash(self.target, at=self.crash_time)
                .recover(self.target, at=self.recover_time))

    def build_network(self, seed: int = 1) -> FabricNetwork:
        topology = make_topology(self.orderer_kind, self.policy, self.peers,
                                 statedb=self.statedb)
        workload = WorkloadConfig(
            arrival_rate=self.rate, duration=self.duration,
            warmup=self.warmup, cooldown=self.cooldown, tx_size=1,
            ordering_timeout=self.ordering_timeout,
            endorsement_timeout=self.ordering_timeout,
            max_resubmits=self.max_resubmits,
            resubmit_backoff=self.resubmit_backoff)
        return FabricNetwork(topology, workload, seed=seed,
                             faults=self.build_schedule(),
                             workload_kind=self.workload_kind)


#: Re-election bounds: Raft elects within one randomized election timeout
#: (uniform in [T, 2T], T = 0.5 s) plus replication of the no-op entry;
#: Kafka needs a full session timeout (1 s) plus the session monitor's poll
#: grid (0.25 s) plus the quorum write and watcher notification.
SCENARIOS: dict[str, FaultScenario] = {
    scenario.name: scenario for scenario in (
        FaultScenario(
            name="raft-leader-kill", orderer_kind="raft",
            description="crash the Raft leader OSN mid-run, recover it 4 s "
                        "later",
            max_reelection=1.5),
        FaultScenario(
            name="kafka-broker-kill", orderer_kind="kafka",
            description="crash the partition-leader Kafka broker mid-run, "
                        "recover it 4 s later",
            max_reelection=2.5),
        FaultScenario(
            name="peer-wipe-recover", orderer_kind="solo",
            description="crash an endorsing peer whose CouchDB state is "
                        "wiped; on recovery it restores the latest "
                        "snapshot and replays the tail blocks",
            target="peer2", expect_reelection=False, expect_catchup=True,
            statedb=StateDBConfig(kind="couchdb", cache=True, bulk=True,
                                  snapshot_interval=3, wipe_on_crash=True),
            workload_kind="conflict"),
    )
}


@dataclasses.dataclass
class FaultScenarioResult:
    """One scenario run: metrics, recovery analysis, pass criteria."""

    scenario: FaultScenario
    seed: int
    metrics: dict[str, float]
    recovery: RecoveryReport
    injected: list[tuple[float, str, str]]

    @property
    def reelection_ok(self) -> bool:
        if not self.scenario.expect_reelection:
            return True
        return (self.recovery.time_to_reelection is not None
                and self.recovery.time_to_reelection
                <= self.scenario.max_reelection)

    @property
    def catchup_ok(self) -> bool:
        """Expected state-DB rebuilds restored a snapshot, not genesis."""
        if not self.scenario.expect_catchup:
            return True
        return self.recovery.caught_up_from_snapshot

    @property
    def recovered_ok(self) -> bool:
        return self.recovery.recovered_fraction >= MIN_RECOVERED_FRACTION

    @property
    def throughput_ok(self) -> bool:
        return self.recovery.throughput_recovered

    @property
    def ok(self) -> bool:
        return (self.reelection_ok and self.catchup_ok
                and self.recovered_ok and self.throughput_ok)

    def render(self) -> str:
        def mark(passed: bool) -> str:
            return "ok" if passed else "FAILED"

        scenario = self.scenario
        lines = [
            f"[{mark(self.ok)}] {scenario.name} (seed {self.seed}): "
            f"{scenario.description}",
            "  injected: " + "; ".join(
                f"t={at:g}s {kind} {target}"
                for at, kind, target in self.injected),
        ]
        lines.extend("  " + line
                     for line in self.recovery.render().splitlines())
        criteria = []
        if scenario.expect_reelection:
            criteria.append(f"re-election <= {scenario.max_reelection:g}s "
                            f"[{mark(self.reelection_ok)}]")
        if scenario.expect_catchup:
            criteria.append(
                f"state catch-up from snapshot [{mark(self.catchup_ok)}]")
        criteria.append(f"in-flight recovery >= "
                        f"{MIN_RECOVERED_FRACTION * 100:.0f}% "
                        f"[{mark(self.recovered_ok)}]")
        criteria.append(f"throughput within 10% [{mark(self.throughput_ok)}]")
        lines.append("  criteria: " + ", ".join(criteria))
        return "\n".join(lines)


def get_scenario(name: str) -> FaultScenario:
    scenario = SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown fault scenario {name!r} (known: {known})")
    return scenario


def run_fault_scenario(name: str, seed: int = 1) -> FaultScenarioResult:
    """Run one fault scenario and analyse its recovery."""
    return run_digested_scenario(name, seed=seed, keep_records=False)[1]


def run_digested_scenario(name: str, seed: int = 1,
                          keep_records: bool = True
                          ) -> tuple[TraceDigest, FaultScenarioResult]:
    """Run one scenario with the trace digest attached (double-run input)."""
    scenario = get_scenario(name)
    network = scenario.build_network(seed=seed)
    results: list[FaultScenarioResult] = []

    def drive() -> None:
        metrics = network.run_workload().as_dict()
        recovery = network.recovery_report(scenario.crash_time)
        injector = network.fault_injector
        results.append(FaultScenarioResult(
            scenario=scenario, seed=seed, metrics=metrics,
            recovery=recovery,
            injected=list(injector.injected) if injector else []))

    digest = digest_run(network.sim, drive, keep_records=keep_records)
    return digest, results[0]


@dataclasses.dataclass
class ScenarioCheck:
    """Same-seed double-run verdict for one fault scenario."""

    scenario: FaultScenario
    seed: int
    report: DeterminismReport
    results_identical: bool
    result: FaultScenarioResult

    @property
    def ok(self) -> bool:
        return self.report.identical and self.results_identical

    def render(self) -> str:
        status = "ok" if self.ok else "FAILED"
        header = (f"[{status}] {self.scenario.name} determinism, seed "
                  f"{self.seed}: recovery analysis "
                  f"{'identical' if self.results_identical else 'DIVERGED'}"
                  f" across runs")
        indented = "\n".join("  " + line
                             for line in self.report.render().splitlines())
        return header + "\n" + indented


def check_scenario_determinism(name: str, seed: int = 1,
                               keep_records: bool = True) -> ScenarioCheck:
    """Run one scenario twice from the same seed and diff everything."""
    results: list[FaultScenarioResult] = []

    def run_once() -> TraceDigest:
        digest, result = run_digested_scenario(
            name, seed=seed, keep_records=keep_records)
        results.append(result)
        return digest

    report = run_twice_and_diff(run_once, keep_records=keep_records)
    identical = (results[0].metrics == results[1].metrics
                 and results[0].recovery == results[1].recovery
                 and results[0].injected == results[1].injected)
    return ScenarioCheck(scenario=get_scenario(name), seed=seed,
                         report=report, results_identical=identical,
                         result=results[0])
