"""Regeneration of every table and figure in the paper's evaluation (§IV).

Each experiment function returns an :class:`~repro.experiments.report.ExperimentResult`
carrying the regenerated rows/series next to the paper's reported values, so
the comparison the paper invites ("who wins, by what factor, where do the
knees fall") is printed directly.

| id   | paper artifact                                         |
|------|--------------------------------------------------------|
| tab1 | Table I  experimental configuration                    |
| fig2 | Fig. 2   overall throughput vs arrival rate            |
| fig3 | Fig. 3   overall latency vs arrival rate               |
| fig4 | Fig. 4   per-phase throughput under OR                 |
| fig5 | Fig. 5   per-phase throughput under AND                |
| fig6 | Fig. 6   per-phase latency under OR                    |
| fig7 | Fig. 7   per-phase latency under AND                   |
| tab2 | Table II throughput vs number of endorsing peers       |
| tab3 | Table III latency vs number of endorsing peers         |
| fig8 | Fig. 8   throughput/latency vs number of OSNs          |
"""

from repro.experiments.figures import (
    run_fig2_fig3,
    run_fig4_fig5,
    run_fig6_fig7,
    run_fig8,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import SweepPoint, run_point, search_peak
from repro.experiments.tables import run_table1, run_table2_table3

__all__ = [
    "ExperimentResult",
    "SweepPoint",
    "run_fig2_fig3",
    "run_fig4_fig5",
    "run_fig6_fig7",
    "run_fig8",
    "run_point",
    "run_table1",
    "run_table2_table3",
    "search_peak",
]
