"""End-to-end determinism checks over whole Fabric configurations.

Glue between the generic runtime sanitizer
(:mod:`repro.sim.sanitizer`) and the benchmark harness: build a network
point, run it with an attached trace digest, run it *again* from the same
seed, and demand byte-identical schedules and metrics.  This is what
``repro check-determinism`` executes for Solo, Kafka, and Raft.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.common.config import StateDBConfig
from repro.experiments.runner import make_topology, make_workload
from repro.fabric.network import FabricNetwork
from repro.sim.sanitizer import (
    DeterminismReport,
    TraceDigest,
    digest_run,
    run_twice_and_diff,
)

#: Small-but-representative defaults: enough load to exercise endorse /
#: order / validate on every backend while keeping a double run fast.
CHECK_PEERS = 4
CHECK_RATE = 60.0
CHECK_DURATION = 4.0


@dataclasses.dataclass
class PointCheck:
    """Determinism verdict for one (orderer, policy, rate) configuration."""

    orderer_kind: str
    policy: str
    rate: float
    seed: int
    report: DeterminismReport
    metrics_identical: bool
    throughput: float
    statedb_kind: str = "leveldb"
    #: Whether both runs produced bit-identical critical-path summaries
    #: (the telemetry layer itself must be deterministic, not just the
    #: schedule underneath it).
    critical_path_identical: bool = True

    @property
    def ok(self) -> bool:
        return (self.report.identical and self.metrics_identical
                and self.critical_path_identical)

    def render(self) -> str:
        status = "ok" if self.ok else "FAILED"
        cp = ("identical" if self.critical_path_identical else "DIVERGED")
        header = (f"[{status}] {self.orderer_kind} / {self.policy} / "
                  f"{self.statedb_kind} @ "
                  f"{self.rate:g} tx/s, seed {self.seed}: "
                  f"{self.throughput:.1f} tx/s committed, metrics "
                  f"{'identical' if self.metrics_identical else 'DIVERGED'}"
                  f", critical-path summary {cp}")
        return header + "\n" + _indent(self.report.render())


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def critical_path_hash(network: FabricNetwork) -> str:
    """SHA-256 of the run's critical-path summary (canonical JSON).

    Hashing the *telemetry output* (rather than the schedule) proves the
    observability layer itself is deterministic: same seed, same spans,
    same extracted paths, bit-identical attribution.
    """
    summary = network.critical_path_report().as_dict()
    payload = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def run_digested_point(orderer_kind: str, policy: str = "AND2",
                       rate: float = CHECK_RATE,
                       peers: int = CHECK_PEERS,
                       duration: float = CHECK_DURATION,
                       seed: int = 1,
                       keep_records: bool = True,
                       statedb: StateDBConfig | None = None,
                       workload_kind: str = "unique"
                       ) -> tuple[TraceDigest, dict[str, float], str]:
    """Run one network point with the trace digest attached.

    The run executes with tracing enabled (but without the sampler, which
    would add its own timeout events), so the schedule digest doubles as
    proof that the telemetry layer is schedule-neutral — it must match
    the digests of untraced runs.  Returns the digest, the run's windowed
    metrics as a dict, and the critical-path summary hash, so double-run
    checks compare telemetry as well as schedules and metrics.
    """
    topology = make_topology(orderer_kind, policy, peers, statedb=statedb)
    workload = make_workload(rate, duration)
    network = FabricNetwork(topology, workload, seed=seed,
                            workload_kind=workload_kind,
                            observe=True, observe_sampler=False)
    metrics: list[dict[str, float]] = []

    def drive() -> None:
        metrics.append(network.run_workload().as_dict())

    digest = digest_run(network.sim, drive, keep_records=keep_records)
    return digest, metrics[0], critical_path_hash(network)


def check_point_determinism(orderer_kind: str, policy: str = "AND2",
                            rate: float = CHECK_RATE,
                            peers: int = CHECK_PEERS,
                            duration: float = CHECK_DURATION,
                            seed: int = 1,
                            keep_records: bool = True,
                            statedb: StateDBConfig | None = None,
                            workload_kind: str = "unique") -> PointCheck:
    """Same-seed double run of one configuration, diffed."""
    metrics_by_run: list[dict[str, float]] = []
    cp_hashes: list[str] = []

    def run_once() -> TraceDigest:
        digest, metrics, cp_hash = run_digested_point(
            orderer_kind, policy=policy, rate=rate, peers=peers,
            duration=duration, seed=seed, keep_records=keep_records,
            statedb=statedb, workload_kind=workload_kind)
        metrics_by_run.append(metrics)
        cp_hashes.append(cp_hash)
        return digest

    report = run_twice_and_diff(run_once, keep_records=keep_records)
    # Identical schedules imply identical metrics; compare anyway so a
    # digest-implementation bug cannot mask a metrics divergence.
    metrics_identical = metrics_by_run[0] == metrics_by_run[1]
    return PointCheck(
        orderer_kind=orderer_kind, policy=policy, rate=rate, seed=seed,
        report=report, metrics_identical=metrics_identical,
        throughput=metrics_by_run[0].get("overall_throughput", 0.0),
        statedb_kind=statedb.kind if statedb is not None else "leveldb",
        critical_path_identical=cp_hashes[0] == cp_hashes[1])
