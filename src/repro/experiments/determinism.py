"""End-to-end determinism checks over whole Fabric configurations.

Glue between the generic runtime sanitizer
(:mod:`repro.sim.sanitizer`) and the benchmark harness: build a network
point, run it with an attached trace digest, run it *again* from the same
seed, and demand byte-identical schedules and metrics.  This is what
``repro check-determinism`` executes for Solo, Kafka, and Raft.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import StateDBConfig
from repro.experiments.runner import make_topology, make_workload
from repro.fabric.network import FabricNetwork
from repro.sim.sanitizer import (
    DeterminismReport,
    TraceDigest,
    digest_run,
    run_twice_and_diff,
)

#: Small-but-representative defaults: enough load to exercise endorse /
#: order / validate on every backend while keeping a double run fast.
CHECK_PEERS = 4
CHECK_RATE = 60.0
CHECK_DURATION = 4.0


@dataclasses.dataclass
class PointCheck:
    """Determinism verdict for one (orderer, policy, rate) configuration."""

    orderer_kind: str
    policy: str
    rate: float
    seed: int
    report: DeterminismReport
    metrics_identical: bool
    throughput: float
    statedb_kind: str = "leveldb"

    @property
    def ok(self) -> bool:
        return self.report.identical and self.metrics_identical

    def render(self) -> str:
        status = "ok" if self.ok else "FAILED"
        header = (f"[{status}] {self.orderer_kind} / {self.policy} / "
                  f"{self.statedb_kind} @ "
                  f"{self.rate:g} tx/s, seed {self.seed}: "
                  f"{self.throughput:.1f} tx/s committed, metrics "
                  f"{'identical' if self.metrics_identical else 'DIVERGED'}")
        return header + "\n" + _indent(self.report.render())


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def run_digested_point(orderer_kind: str, policy: str = "AND2",
                       rate: float = CHECK_RATE,
                       peers: int = CHECK_PEERS,
                       duration: float = CHECK_DURATION,
                       seed: int = 1,
                       keep_records: bool = True,
                       statedb: StateDBConfig | None = None,
                       workload_kind: str = "unique"
                       ) -> tuple[TraceDigest, dict[str, float]]:
    """Run one network point with the trace digest attached.

    Returns the digest and the run's windowed metrics as a dict, so
    double-run checks compare metrics as well as schedules.
    """
    topology = make_topology(orderer_kind, policy, peers, statedb=statedb)
    workload = make_workload(rate, duration)
    network = FabricNetwork(topology, workload, seed=seed,
                            workload_kind=workload_kind)
    metrics: list[dict[str, float]] = []

    def drive() -> None:
        metrics.append(network.run_workload().as_dict())

    digest = digest_run(network.sim, drive, keep_records=keep_records)
    return digest, metrics[0]


def check_point_determinism(orderer_kind: str, policy: str = "AND2",
                            rate: float = CHECK_RATE,
                            peers: int = CHECK_PEERS,
                            duration: float = CHECK_DURATION,
                            seed: int = 1,
                            keep_records: bool = True,
                            statedb: StateDBConfig | None = None,
                            workload_kind: str = "unique") -> PointCheck:
    """Same-seed double run of one configuration, diffed."""
    metrics_by_run: list[dict[str, float]] = []

    def run_once() -> TraceDigest:
        digest, metrics = run_digested_point(
            orderer_kind, policy=policy, rate=rate, peers=peers,
            duration=duration, seed=seed, keep_records=keep_records,
            statedb=statedb, workload_kind=workload_kind)
        metrics_by_run.append(metrics)
        return digest

    report = run_twice_and_diff(run_once, keep_records=keep_records)
    # Identical schedules imply identical metrics; compare anyway so a
    # digest-implementation bug cannot mask a metrics divergence.
    metrics_identical = metrics_by_run[0] == metrics_by_run[1]
    return PointCheck(
        orderer_kind=orderer_kind, policy=policy, rate=rate, seed=seed,
        report=report, metrics_identical=metrics_identical,
        throughput=metrics_by_run[0].get("overall_throughput", 0.0),
        statedb_kind=statedb.kind if statedb is not None else "leveldb")
