"""Figure regeneration: Figs. 2-8 of the paper.

Figures 2-7 all derive from one family of simulation runs (orderer x policy
x arrival rate over the default deployment), so measurement points are
memoized per process: regenerating Fig. 3 after Fig. 2 reuses the identical
runs rather than repeating them.
"""

from __future__ import annotations

import functools
import math
import typing

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    AND_POLICY,
    DEFAULT_PEERS,
    OR_POLICY,
    make_topology,
    make_workload,
    run_point,
)

ORDERER_KINDS = ["solo", "kafka", "raft"]

#: Arrival-rate grids.  "quick" keeps pytest-benchmark runs short; "full"
#: matches the paper's sweep.  The top rate (520) deliberately exceeds the
#: workload generator's own capacity (10 clients x ~50 tps), the regime in
#: which the paper's Figs. 3/6/7 show every phase's latency exploding.
RATE_GRIDS = {
    "quick": [100.0, 250.0, 520.0],
    "full": [50.0, 100.0, 150.0, 200.0, 250.0, 300.0,
             350.0, 400.0, 450.0, 520.0],
}

DURATIONS = {"quick": 12.0, "full": 30.0}


@functools.lru_cache(maxsize=4096)
def _cached_point(orderer_kind: str, policy: str, rate: float,
                  duration: float, seed: int):
    return run_point(orderer_kind, policy, rate, peers=DEFAULT_PEERS,
                     duration=duration, seed=seed)


def _sweep(policies: list[str], mode: str, seed: int):
    """All (orderer, policy, rate) points for Figs. 2-7 (memoized)."""
    rates = RATE_GRIDS[mode]
    duration = DURATIONS[mode]
    points = []
    for orderer_kind in ORDERER_KINDS:
        for policy in policies:
            for rate in rates:
                points.append(_cached_point(orderer_kind, policy, rate,
                                            duration, seed))
    return points


def run_fig2_fig3(mode: str = "quick",
                  seed: int = 1) -> tuple[ExperimentResult, ExperimentResult]:
    """Figs. 2 and 3: overall throughput and latency vs arrival rate.

    Paper findings reproduced: (1) all three ordering services peak around
    300 tps under OR and around 200 tps under AND; (2) latency spikes once
    the arrival rate passes the peak, earlier for AND.
    """
    points = _sweep([OR_POLICY, AND_POLICY], mode, seed)
    throughput_rows = []
    latency_rows = []
    for point in points:
        label = "OR" if point.policy == OR_POLICY else "AND"
        throughput_rows.append([point.orderer_kind, label, point.rate,
                                point.throughput])
        latency_rows.append([point.orderer_kind, label, point.rate,
                             point.latency])
    fig2 = ExperimentResult(
        experiment_id="fig2",
        title="Overall transaction throughput (paper: OR peaks ~300 tps, "
              "AND ~200 tps, no orderer difference)",
        columns=["orderer", "policy", "arrival_rate", "throughput_tps"],
        rows=throughput_rows)
    fig3 = ExperimentResult(
        experiment_id="fig3",
        title="Overall transaction latency (paper: flat below peak, rapid "
              "growth past it; AND saturates earlier)",
        columns=["orderer", "policy", "arrival_rate", "latency_s"],
        rows=latency_rows)
    return fig2, fig3


def run_fig4_fig5(mode: str = "quick",
                  seed: int = 1) -> tuple[ExperimentResult, ExperimentResult]:
    """Figs. 4 and 5: per-phase throughput under OR and AND.

    Paper findings reproduced: each phase grows linearly with the arrival
    rate up to its own peak; the validate phase peaks first (the system
    bottleneck), at ~200 tps under AND5.
    """
    or_points = _sweep([OR_POLICY], mode, seed)
    and_points = _sweep([AND_POLICY], mode, seed)

    def rows_for(points):
        return [[p.orderer_kind, p.rate,
                 p.metrics.execute_throughput,
                 p.metrics.order_throughput,
                 p.metrics.validate_throughput] for p in points]

    columns = ["orderer", "arrival_rate", "execute_tps", "order_tps",
               "validate_tps"]
    fig4 = ExperimentResult(
        experiment_id="fig4",
        title="Per-phase throughput, endorsement policy OR (paper: "
              "bottleneck in validate; execute scales well)",
        columns=columns, rows=rows_for(or_points))
    fig5 = ExperimentResult(
        experiment_id="fig5",
        title="Per-phase throughput, endorsement policy AND5 (paper: "
              "validate limited to ~200 tps)",
        columns=columns, rows=rows_for(and_points))
    return fig4, fig5


def run_fig6_fig7(mode: str = "quick",
                  seed: int = 1) -> tuple[ExperimentResult, ExperimentResult]:
    """Figs. 6 and 7: per-phase latency under OR and AND.

    Paper findings reproduced: phase latencies are stable below the peak
    and grow sharply once the arrival rate passes it (queueing effect).
    """
    or_points = _sweep([OR_POLICY], mode, seed)
    and_points = _sweep([AND_POLICY], mode, seed)

    def rows_for(points):
        return [[p.orderer_kind, p.rate,
                 p.metrics.execute_latency,
                 p.metrics.order_validate_latency] for p in points]

    columns = ["orderer", "arrival_rate", "execute_latency_s",
               "order_validate_latency_s"]
    fig6 = ExperimentResult(
        experiment_id="fig6",
        title="Per-phase latency, endorsement policy OR",
        columns=columns, rows=rows_for(or_points))
    fig7 = ExperimentResult(
        experiment_id="fig7",
        title="Per-phase latency, endorsement policy AND5",
        columns=columns, rows=rows_for(and_points))
    return fig6, fig7


# ----------------------------------------------------------------------
# Analytic overlays: the stochastic phase model's predicted curves
# ----------------------------------------------------------------------

#: Which figure ids carry an analytic overlay, and what it predicts.
_OVERLAY_KINDS = {
    "fig2": "throughput",
    "fig3": "latency",
    "fig6": "order_validate",
    "fig7": "order_validate",
}


def analytic_overlay(result: ExperimentResult, samples: int = 40,
                     ) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Phase-model prediction curves for a figure's panels.

    Returns ``{orderer: {series name: [(rate, y), ...]}}`` over a dense
    rate grid spanning the figure's measured range, ready to hand to
    :func:`repro.experiments.plots.plot_result` as ``overlays``.  Latency
    curves stop at the predicted saturation knee (the model reports
    infinite latency past it); the throughput curve flattens at the
    predicted system capacity instead.  Closed-form throughout — the
    overlay adds no simulation runs.  Empty for figures without an
    analytic counterpart.
    """
    kind = _OVERLAY_KINDS.get(result.experiment_id)
    if kind is None:
        return {}
    columns = result.columns
    rate_index = columns.index("arrival_rate")
    orderer_index = columns.index("orderer")
    rates = [float(row[rate_index]) for row in result.rows]
    orderers = list(dict.fromkeys(row[orderer_index]
                                  for row in result.rows))
    if not rates or not orderers:
        return {}
    low, high = min(rates), max(rates)
    if high <= low:
        high = low + 1.0
    grid = [low + (high - low) * step / (samples - 1)
            for step in range(samples)]
    if result.experiment_id in ("fig2", "fig3"):
        policies = [("OR model", OR_POLICY), ("AND model", AND_POLICY)]
    elif result.experiment_id == "fig6":
        policies = [("model", OR_POLICY)]
    else:
        policies = [("model", AND_POLICY)]

    overlays: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for orderer_kind in orderers:
        panel: dict[str, list[tuple[float, float]]] = {}
        for name, policy in policies:
            panel[name] = _overlay_curve(orderer_kind, policy, grid, kind)
        overlays[orderer_kind] = panel
    return overlays


def _overlay_curve(orderer_kind: str, policy: str,
                   grid: typing.Sequence[float],
                   kind: str) -> list[tuple[float, float]]:
    from repro.analysis.phase_model import PhaseModel

    topology = make_topology(orderer_kind, policy, DEFAULT_PEERS)
    # Capacity is the saturation scale with traffic shares fixed, so any
    # probe rate yields the same number; compute it once per curve.
    capacity = PhaseModel(topology,
                          make_workload(grid[0] or 1.0)).predict().capacity
    points = []
    for rate in grid:
        if rate <= 0:
            continue
        if kind == "throughput":
            points.append((rate, min(rate, capacity)))
            continue
        prediction = PhaseModel(topology, make_workload(rate)).predict(
            with_capacity=False)
        if kind == "latency":
            value = prediction.latency.mean
        else:
            value = prediction.order.mean + prediction.validate.mean
        # The model predicts unbounded latency past saturation; ending
        # the curve at the knee is the honest rendering of that.
        if math.isfinite(value):
            points.append((rate, value))
    return points


#: Fig. 8 OSN counts; the paper scales up to 12.
OSN_GRIDS = {
    "quick": [1, 4, 12],
    "full": [1, 2, 4, 6, 8, 10, 12],
}


def run_fig8(mode: str = "quick", seed: int = 1,
             rate: float = 250.0) -> ExperimentResult:
    """Fig. 8: throughput/latency vs number of OSNs, Kafka and Raft.

    Paper finding reproduced: no significant change when scaling OSNs to 12
    or the ZooKeeper/broker cluster from 3 to 7 — ordering is not the
    bottleneck.
    """
    duration = DURATIONS[mode]
    rows = []
    for cluster in (3, 7):
        for orderer_kind in ("kafka", "raft"):
            for num_osns in OSN_GRIDS[mode]:
                point = run_point(
                    orderer_kind, OR_POLICY, rate, peers=DEFAULT_PEERS,
                    duration=duration, seed=seed, num_osns=num_osns,
                    num_brokers=cluster, num_zookeepers=cluster)
                rows.append([orderer_kind, cluster, num_osns,
                             point.throughput, point.latency])
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Throughput/latency vs #OSNs at {rate:.0f} tps arrival "
              "(paper: flat in OSN count and in ZK/broker cluster size)",
        columns=["orderer", "zk_and_brokers", "num_osns", "throughput_tps",
                 "latency_s"],
        rows=rows)
