"""Cross-validation: the analytic phase model vs the simulator.

The stochastic phase model (:mod:`repro.analysis.phase_model`) predicts
throughput and latency distributions in closed form; this module is its
standing accuracy contract.  For each scenario of the perfbench matrix it
runs the real simulation, builds the phase model from the *same*
topology/workload config objects, and compares:

- **gated** (fail the run beyond tolerance): committed throughput, and
  end-to-end latency p50 and p95;
- **reported** (accuracy bookkeeping, not gated): per-phase mean
  latencies (execute / order / validate), where the decomposition either
  earns its keep or shows exactly which station drifted.

Tolerances are deliberate and asymmetric to the metric: throughput wears
the simulator's finite-measurement-window bias (a ~1 s pipeline fill
inside a short smoke window depresses the committed rate below the
offered rate), and latency quantiles wear the two-moment lognormal
approximation.  ``repro crossval --smoke`` is the CI gate; ``--out``
writes the full report JSON as a build artifact.

CLI::

    repro crossval --smoke                  # CI gate, scaled-down subset
    repro crossval                          # full perfbench matrix
    repro crossval --perf-scenario solo-and-leveldb --out crossval.json
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.analysis.phase_model import PhaseModel
from repro.experiments.farm import run_farm
from repro.experiments.perfbench import (
    GOLDEN_SEED,
    SCENARIOS,
    _build_network,
)

__all__ = ["TOLERANCES", "MetricCheck", "ScenarioCrossval",
           "CrossvalReport", "crossval_scenario", "run_crossval"]

#: Declared relative-error tolerances for the gated metrics.
TOLERANCES: dict[str, float] = {
    "throughput": 0.25,
    "latency_p50": 0.35,
    "latency_p95": 0.40,
}


@dataclasses.dataclass(frozen=True)
class MetricCheck:
    """One simulated-vs-predicted comparison."""

    metric: str
    simulated: float
    predicted: float
    #: Gate threshold; ``None`` marks an informational (ungated) metric.
    tolerance: float | None = None

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.simulated), 1e-9)
        return abs(self.predicted - self.simulated) / scale

    @property
    def ok(self) -> bool:
        return self.tolerance is None or self.rel_error <= self.tolerance

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "metric": self.metric,
            "simulated": self.simulated,
            "predicted": self.predicted,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


@dataclasses.dataclass
class ScenarioCrossval:
    """One scenario's full comparison."""

    scenario: str
    scale: str
    seed: int
    checks: list[MetricCheck]
    phases: list[MetricCheck]
    bottleneck: str
    capacity: float

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "ok": self.ok,
            "bottleneck": self.bottleneck,
            "capacity": self.capacity,
            "checks": [check.as_dict() for check in self.checks],
            "phases": [check.as_dict() for check in self.phases],
        }


def crossval_scenario(name: str, seed: int = GOLDEN_SEED,
                      scale: str = "full") -> ScenarioCrossval:
    """Simulate one perfbench scenario and compare the model against it."""
    scenario = SCENARIOS[name].at_scale(scale)
    network = _build_network(scenario, seed)
    metrics = network.run_workload()
    model = PhaseModel(network.topology, network.workload_config,
                       fit=None)
    prediction = model.predict()
    latency = prediction.latency
    checks = [
        MetricCheck("throughput", metrics.overall_throughput,
                    prediction.throughput, TOLERANCES["throughput"]),
        MetricCheck("latency_p50", metrics.overall_latency_p50,
                    latency.p50, TOLERANCES["latency_p50"]),
        MetricCheck("latency_p95", metrics.overall_latency_p95,
                    latency.p95, TOLERANCES["latency_p95"]),
    ]
    phases = [
        MetricCheck("execute_mean", metrics.execute_latency,
                    prediction.execute.mean),
        MetricCheck("order_mean", metrics.order_latency,
                    prediction.order.mean),
        MetricCheck("validate_mean", metrics.validate_latency,
                    prediction.validate.mean),
    ]
    return ScenarioCrossval(
        scenario=name, scale=scale, seed=seed, checks=checks,
        phases=phases, bottleneck=prediction.bottleneck,
        capacity=prediction.capacity)


@dataclasses.dataclass
class CrossvalReport:
    """All scenario comparisons of one ``repro crossval`` invocation."""

    results: list[ScenarioCrossval]
    scale: str
    seed: int

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "ok": self.ok,
            "tolerances": dict(TOLERANCES),
            "results": [result.as_dict() for result in self.results],
        }

    def write_json(self, path: str | pathlib.Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"crossval ({self.scale} scale, seed {self.seed}): "
                 f"predicted vs simulated"]
        for result in self.results:
            lines.append(f"\n{result.scenario}  "
                         f"[model capacity {result.capacity:.0f} tx/s, "
                         f"bottleneck {result.bottleneck}]")
            lines.append(f"  {'metric':<14} {'sim':>9} {'model':>9} "
                         f"{'err':>7}  verdict")
            for check in result.checks + result.phases:
                if check.tolerance is None:
                    verdict = "-"
                else:
                    verdict = ("ok" if check.ok
                               else f"FAIL (> {check.tolerance:.0%})")
                lines.append(
                    f"  {check.metric:<14} {check.simulated:>9.3f} "
                    f"{check.predicted:>9.3f} {check.rel_error:>6.1%}  "
                    f"{verdict}")
        failing = [result.scenario for result in self.results
                   if not result.ok]
        if failing:
            lines.append(f"\ncrossval: {len(failing)}/{len(self.results)} "
                         f"scenario(s) beyond tolerance: "
                         f"{', '.join(failing)}")
        else:
            lines.append(f"\ncrossval: all {len(self.results)} scenario(s) "
                         f"within declared tolerances")
        return "\n".join(lines)


def _scenario_worker(task: tuple[str, int, str]) -> ScenarioCrossval:
    """Farm worker: one crossval scenario from its explicit task tuple."""
    name, seed, scale = task
    return crossval_scenario(name, seed=seed, scale=scale)


def run_crossval(names: typing.Sequence[str] | None = None,
                 seed: int = GOLDEN_SEED,
                 scale: str = "full",
                 jobs: int = 1) -> CrossvalReport:
    """Cross-validate ``names`` (default: the whole perfbench matrix).

    ``jobs > 1`` farms scenarios across processes; the report JSON is
    byte-identical to a sequential run (crossval carries no wall-clock
    fields), in the same scenario order.
    """
    if names is None:
        names = list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown crossval scenario(s): {unknown}; "
                       f"known: {sorted(SCENARIOS)}")
    results = run_farm(_scenario_worker,
                       [(name, seed, scale) for name in names],
                       jobs=jobs, labels=list(names))
    return CrossvalReport(results=results, scale=scale, seed=seed)
