"""Plain-text rendering of experiment results, paper values alongside."""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.report import BottleneckReport


@dataclasses.dataclass
class ExperimentResult:
    """A regenerated table/figure: header, rows, and commentary."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list[typing.Any]]
    notes: list[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        """ASCII table with the experiment header and notes."""
        header = f"== {self.experiment_id}: {self.title} =="
        widths = [len(str(column)) for column in self.columns]
        formatted_rows = []
        for row in self.rows:
            formatted = [self._format_cell(cell) for cell in row]
            widths = [max(width, len(text))
                      for width, text in zip(widths, formatted)]
            formatted_rows.append(formatted)
        lines = [header]
        lines.append("  ".join(
            str(column).ljust(width)
            for column, width in zip(self.columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for formatted in formatted_rows:
            lines.append("  ".join(
                text.ljust(width)
                for text, width in zip(formatted, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    @staticmethod
    def _format_cell(cell: typing.Any) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.2f}" if abs(cell) < 100 else f"{cell:.0f}"
        return str(cell)

    def column(self, name: str) -> list[typing.Any]:
        """All values of one named column (for tests and plots)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def bottleneck_result(report: "BottleneckReport",
                      title: str = "Bottleneck attribution",
                      experiment_id: str = "trace",
                      top: int = 12) -> ExperimentResult:
    """Convert a bottleneck report into the standard result table."""
    rows = [[usage.name, usage.phase or "-", usage.kind, usage.capacity,
             usage.utilization, usage.mean_queue, usage.max_queue,
             usage.wait_p95]
            for usage in report.resources[:top]]
    notes = []
    if report.bottleneck is not None:
        verdict = ("saturated" if report.bottleneck.saturated
                   else "not saturated")
        notes.append(f"bottleneck: {report.bottleneck.name} "
                     f"(utilization {report.bottleneck.utilization:.3f}, "
                     f"{verdict})")
    if report.saturated_phase:
        notes.append(f"saturated phase: {report.saturated_phase}")
    if report.window:
        notes.append(f"window: [{report.window[0]:.2f}s, "
                     f"{report.window[1]:.2f}s)")
    return ExperimentResult(
        experiment_id=experiment_id, title=title,
        columns=["resource", "phase", "kind", "capacity", "util",
                 "avg queue", "max queue", "wait p95 (s)"],
        rows=rows, notes=notes)
