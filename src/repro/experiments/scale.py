"""Scale-out characterization: peers x channels x population size.

Nguyen et al. (arXiv:2107.09886) characterise Fabric at network sizes the
original paper never reaches — hundreds of peers, many channels, client
populations far beyond what one load generator can emulate.  This module
reproduces that style of experiment on the simulator:

- topologies with 100+ peers stay practical because only a small endorsing
  core serves proposals (the rest are committing-only peers) and block
  dissemination runs over the relay-tree gossip
  (:func:`repro.peer.gossip.relay_children`) with bounded per-node fan-out;
- client load comes from the aggregated population subsystem
  (:class:`repro.client.population.ClientPopulation`), so a 1,000,000-user
  run spawns O(cohorts) kernel processes, not O(users);
- every point reports per-cohort and per-channel
  :class:`~repro.metrics.collector.PhaseMetrics`, plus bottleneck
  attribution naming the saturated resource.

CLI::

    repro scale                          # full sweep (incl. the 1M-user,
                                         # 100-peer, 4-channel point)
    repro scale --smoke                  # CI-sized sweep
    repro scale --peers 100 --channels 4 --users 1000000   # one point
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.common.config import (
    ChannelConfig,
    OrdererConfig,
    PopulationConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.experiments.farm import run_farm
from repro.fabric.network import FabricNetwork
from repro.metrics.collector import PhaseMetrics

#: Endorsing core size: proposals are served by at most this many peers
#: regardless of the topology's total peer count (the paper's ten-peer
#: deployment), so adding peers exercises dissemination and commit — the
#: dimension Nguyen et al. scale — not the endorsement pool.
ENDORSING_CORE = 10

#: Relay-tree fan-out for scale topologies: each peer forwards a block to
#: at most this many children, keeping leader egress bounded at any size.
GOSSIP_FANOUT = 4


def make_scale_topology(peers: int, channels: int,
                        endorsing: int = ENDORSING_CORE,
                        gossip_fanout: int = GOSSIP_FANOUT,
                        orderer_kind: str = "raft") -> TopologyConfig:
    """A scale-out deployment: small endorsing core, committing fleet.

    Channels are named ``ch1..chN`` and every peer joins all of them.
    Block dissemination uses leader-peer gossip over an N-ary relay tree
    (one deliver stream from the ordering service, bounded fan-out below).
    """
    endorsing = min(peers, endorsing)
    extra = [ChannelConfig(name=f"ch{index}",
                           endorsement_policy="OR(1..n)")
             for index in range(2, channels + 1)]
    return TopologyConfig(
        num_endorsing_peers=endorsing,
        num_committing_only_peers=peers - endorsing,
        channel=ChannelConfig(name="ch1", endorsement_policy="OR(1..n)"),
        extra_channels=extra,
        gossip=True,
        gossip_fanout=gossip_fanout,
        orderer=OrdererConfig(kind=orderer_kind,
                              num_osns=1 if orderer_kind == "solo" else 3))


def make_scale_workload(users: int, rate: float, duration: float,
                        cohorts_per_channel: int = 2) -> WorkloadConfig:
    """An aggregated-population workload at ``rate`` tx/s total."""
    return WorkloadConfig(
        arrival_rate=rate, duration=duration,
        warmup=min(3.0, duration / 4), cooldown=min(2.0, duration / 6),
        tx_size=1,
        population=PopulationConfig(
            num_users=users, cohorts_per_channel=cohorts_per_channel))


@dataclasses.dataclass
class ScalePoint:
    """One (peers, channels, users) measurement."""

    peers: int
    channels: int
    users: int
    cohorts: int
    clients: int            # client nodes built — must equal ``cohorts``
    rate: float
    duration: float
    seed: int
    wall_s: float
    events: int
    metrics: PhaseMetrics
    per_cohort: dict[str, PhaseMetrics]
    per_channel: dict[str, PhaseMetrics]
    #: cohort name -> the channel its slice drives.
    cohort_channels: dict[str, str] = dataclasses.field(default_factory=dict)
    bottleneck: str = ""

    @property
    def throughput(self) -> float:
        return self.metrics.overall_throughput

    @property
    def latency(self) -> float:
        return self.metrics.overall_latency

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "peers": self.peers, "channels": self.channels,
            "users": self.users, "cohorts": self.cohorts,
            "clients": self.clients, "rate": self.rate,
            "duration": self.duration, "seed": self.seed,
            "wall_s": round(self.wall_s, 4), "events": self.events,
            "throughput_tps": round(self.throughput, 2),
            "avg_latency_s": round(self.latency, 4),
            "bottleneck": self.bottleneck,
            "per_cohort": {name: round(m.overall_throughput, 2)
                           for name, m in sorted(self.per_cohort.items())},
            "per_channel": {name: round(m.overall_throughput, 2)
                            for name, m in sorted(self.per_channel.items())},
        }


def run_scale_point(peers: int = 100, channels: int = 4,
                    users: int = 1_000_000, rate: float = 150.0,
                    duration: float = 8.0, cohorts_per_channel: int = 2,
                    seed: int = 1, orderer_kind: str = "raft",
                    observe: bool = True) -> ScalePoint:
    """Run one scale point and collect its per-cohort accounting.

    Observability runs tracer + monitors without the sampler, so the
    bottleneck attribution comes from exact lifetime integrals and the
    event schedule stays identical to an unobserved run.
    """
    topology = make_scale_topology(peers, channels,
                                   orderer_kind=orderer_kind)
    workload = make_scale_workload(users, rate, duration,
                                   cohorts_per_channel=cohorts_per_channel)
    network = FabricNetwork(topology, workload, seed=seed, observe=observe,
                            observe_sampler=False)
    # Wall-clock reads never feed back into the simulation; they are the
    # quantity this harness reports.
    started = time.perf_counter()  # simlint: disable=SL002
    metrics = network.run_workload()
    wall = time.perf_counter() - started  # simlint: disable=SL002
    bottleneck = ""
    if observe:
        report = network.bottleneck_report()
        if report.bottleneck is not None:
            top = report.bottleneck
            bottleneck = (f"{top.name} ({top.phase or '-'}, "
                          f"{top.utilization:.0%} busy)")
    return ScalePoint(
        peers=peers, channels=channels, users=users,
        cohorts=len(network.population.cohorts),
        clients=len(network.clients),
        rate=rate, duration=duration, seed=seed, wall_s=wall,
        events=network.sim.events_processed, metrics=metrics,
        per_cohort=network.cohort_metrics(),
        per_channel=network.channel_metrics(),
        cohort_channels={cohort.name: cohort.spec.channel
                         for cohort in network.population.cohorts},
        bottleneck=bottleneck)


#: The sweep grids: (peers, channels, users, rate).  The full grid varies
#: one dimension at a time around the acceptance point (100 peers, 4
#: channels, 1M users) so the table shows each scaling trend in isolation.
FULL_GRID: list[tuple[int, int, int, float]] = [
    (20, 4, 1_000_000, 150.0),
    (60, 4, 1_000_000, 150.0),
    (100, 4, 1_000_000, 150.0),
    (100, 1, 1_000_000, 150.0),
    (100, 8, 1_000_000, 150.0),
    (100, 4, 10_000, 150.0),
]

SMOKE_GRID: list[tuple[int, int, int, float]] = [
    (8, 2, 100_000, 40.0),
    (16, 2, 1_000_000, 40.0),
]

#: Durations per mode: long enough for a stable window, short enough that
#: the 100-peer points stay tractable for a pure-Python event loop.
FULL_DURATION = 8.0
SMOKE_DURATION = 4.0


@dataclasses.dataclass
class ScaleSweep:
    """All points of one ``repro scale`` invocation."""

    points: list[ScalePoint]
    mode: str
    seed: int

    @property
    def ok(self) -> bool:
        """Sanity gates the sweep must satisfy (CI smoke check).

        Every point commits transactions, reports metrics for every
        cohort, and builds exactly one client per cohort — the O(cohorts)
        process guarantee that makes population size a pure parameter.
        """
        return all(point.throughput > 0
                   and point.clients == point.cohorts
                   and len(point.per_cohort) == point.cohorts
                   for point in self.points)

    def as_dict(self) -> dict[str, typing.Any]:
        return {"mode": self.mode, "seed": self.seed,
                "points": [point.as_dict() for point in self.points]}

    def render(self) -> str:
        header = (f"{'peers':>5}  {'chans':>5}  {'users':>9}  "
                  f"{'cohorts':>7}  {'tps':>7}  {'lat_s':>6}  "
                  f"{'wall_s':>7}  bottleneck")
        lines = [f"scale sweep ({self.mode}, seed {self.seed}); load is "
                 f"aggregated superposed-Poisson — one kernel process per "
                 f"cohort, never per user", header]
        for point in self.points:
            lines.append(
                f"{point.peers:>5}  {point.channels:>5}  "
                f"{point.users:>9}  {point.cohorts:>7}  "
                f"{point.throughput:>7.1f}  {point.latency:>6.3f}  "
                f"{point.wall_s:>7.2f}  {point.bottleneck}")
        verdict = "ok" if self.ok else "FAILED"
        lines.append(f"scale: O(cohorts) client check + per-cohort "
                     f"metrics coverage: {verdict}")
        return "\n".join(lines)


def _point_worker(task: dict) -> ScalePoint:
    """Farm worker: one sweep point from its explicit keyword task."""
    return run_scale_point(**task)


def run_scale_sweep(mode: str = "full", seed: int = 1,
                    observe: bool = True, jobs: int = 1) -> ScaleSweep:
    """Sweep peers x channels x population size.

    ``jobs > 1`` farms grid points across processes; point order and
    metrics are identical to a sequential sweep.
    """
    if mode == "full":
        grid, duration = FULL_GRID, FULL_DURATION
    elif mode == "smoke":
        grid, duration = SMOKE_GRID, SMOKE_DURATION
    else:
        raise ValueError(f"unknown scale mode {mode!r}")
    tasks = [dict(peers=peers, channels=channels, users=users,
                  rate=rate, duration=duration, seed=seed, observe=observe)
             for peers, channels, users, rate in grid]
    labels = [f"{t['peers']}p-{t['channels']}c-{t['users']}u" for t in tasks]
    points = run_farm(_point_worker, tasks, jobs=jobs, labels=labels)
    return ScaleSweep(points=points, mode=mode, seed=seed)
