#!/usr/bin/env python3
"""Channels: private subnets with independent policies and ledgers (§II).

Stands up one network carrying two channels — "payments" under a strict
AND endorsement policy and "telemetry" under OR — over the same peers and
the same Kafka ordering service (one partition per channel, §III).  Shows
that the channels order and commit independently, keep disjoint ledgers,
and pay different endorsement costs.

Run:  python examples/multichannel.py
"""

from repro import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.common.config import ChannelConfig
from repro.fabric.network import FabricNetwork


def main() -> None:
    topology = TopologyConfig(
        num_endorsing_peers=4,
        channel=ChannelConfig(name="payments",
                              endorsement_policy="AND(1..n)"),
        extra_channels=[ChannelConfig(name="telemetry",
                                      endorsement_policy="OR(1..n)")],
        orderer=OrdererConfig(kind="kafka", num_osns=3))
    workload = WorkloadConfig(arrival_rate=60, duration=20, warmup=3,
                              cooldown=2, num_clients=4)
    network = FabricNetwork(topology, workload, seed=21)
    print("Two channels, one network: 'payments' (AND over 4 peers) and "
          "'telemetry' (OR),\nKafka ordering with one partition per "
          "channel...\n")
    metrics = network.run_workload()

    print(f"aggregate committed throughput: "
          f"{metrics.overall_throughput:.1f} tx/s\n")
    peer = network.peers[0]
    for channel in network.channel_names:
        ledger = peer.ledger_for(channel)
        txs = [tx for block in ledger.blocks for tx in block.transactions]
        endorsements = (len(txs[0].endorsements) if txs else 0)
        print(f"channel {channel!r}: height {ledger.height}, "
              f"{len(txs)} txs, {endorsements} endorsement(s) per tx, "
              f"{len(ledger.state)} state keys")
    alpha, beta = (peer.ledger_for(name) for name in network.channel_names)
    shared_keys = set(alpha.state.keys()) & set(beta.state.keys())
    print(f"\nstate keys shared between channels: {len(shared_keys)} "
          "(channels are isolated)")
    leader = network.orderer.broker_named(network.orderer.partition_leader)
    for channel, partition in sorted(leader.partitions.items()):
        print(f"kafka partition {channel!r}: {len(partition.log)} items, "
              f"high watermark {partition.high_watermark}")
    network.assert_ledgers_consistent()
    print("\nAll peers hold identical chains on both channels.")


if __name__ == "__main__":
    main()
