#!/usr/bin/env python3
"""Quickstart: stand up a simulated Fabric network and submit transactions.

Builds the paper's default deployment (10 endorsing peers, Solo ordering,
OR endorsement policy), drives a modest open-loop workload, and prints the
metrics the paper defines: throughput (Definition 4.1), latency
(Definition 4.2), and block time (Definition 4.3).

Run:  python examples/quickstart.py
"""

from repro import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.common.config import ChannelConfig
from repro.fabric.network import FabricNetwork


def main() -> None:
    topology = TopologyConfig(
        num_endorsing_peers=10,
        channel=ChannelConfig(endorsement_policy="OR10"),
        orderer=OrdererConfig(kind="solo", batch_size=100,
                              batch_timeout=1.0))
    workload = WorkloadConfig(arrival_rate=150, duration=20,
                              warmup=3, cooldown=2, tx_size=1)

    network = FabricNetwork(topology, workload, seed=42)
    print("Running a 20-second workload at 150 tx/s against a simulated "
          "Fabric v1.4 network\n(10 endorsing peers, Solo ordering, OR "
          "endorsement policy)...\n")
    metrics = network.run_workload()

    print(f"throughput      : {metrics.overall_throughput:7.1f} tx/s "
          "(Definition 4.1)")
    print(f"latency         : {metrics.overall_latency:7.3f} s    "
          "(Definition 4.2)")
    print(f"block time      : {metrics.block_time:7.3f} s    "
          "(Definition 4.3)")
    print(f"execute phase   : {metrics.execute_throughput:7.1f} tx/s, "
          f"{metrics.execute_latency:.3f} s")
    print(f"order phase     : {metrics.order_throughput:7.1f} tx/s, "
          f"{metrics.order_latency:.3f} s")
    print(f"validate phase  : {metrics.validate_throughput:7.1f} tx/s, "
          f"{metrics.validate_latency:.3f} s")
    print(f"rejected        : {metrics.rejected_rate:7.1f} tx/s")

    # Every peer committed the same chain.
    network.assert_ledgers_consistent()
    heights = {peer.name: peer.ledger.height for peer in network.peers}
    print(f"\nledger height at every peer: {set(heights.values()).pop()} "
          "blocks (all identical)")


if __name__ == "__main__":
    main()
