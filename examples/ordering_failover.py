#!/usr/bin/env python3
"""Crash-fault tolerance: kill consensus leaders mid-workload.

Both Kafka and Raft advertise crash fault tolerance (§III).  This example
runs a steady workload against each and crashes the current consensus
leader (the partition-leader broker for Kafka, the Raft leader OSN for
Raft) halfway through, then reports how the system behaved: the rejection
blip during failover, the recovered throughput, and the ledger's
consistency across every peer afterwards.

Run:  python examples/ordering_failover.py
"""

from repro import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.common.config import ChannelConfig
from repro.fabric.network import FabricNetwork


def build(kind: str) -> FabricNetwork:
    topology = TopologyConfig(
        num_endorsing_peers=5,
        channel=ChannelConfig(endorsement_policy="OR(1..n)"),
        orderer=OrdererConfig(kind=kind, num_osns=3))
    workload = WorkloadConfig(arrival_rate=80, duration=24,
                              warmup=2, cooldown=2)
    return FabricNetwork(topology, workload, seed=7)


def crash_leader(network: FabricNetwork, kind: str) -> str:
    if kind == "kafka":
        leader_name = network.orderer.partition_leader
        network.orderer.broker_named(leader_name).crash()
        return f"kafka partition leader {leader_name}"
    leader = next(node for node in network.orderer.nodes
                  if node.raft.is_leader)
    leader.crash()
    return f"raft leader OSN {leader.name}"


def run(kind: str) -> None:
    network = build(kind)
    network.start()
    start_at = network.STABILIZATION
    network.workload.start(at=start_at)
    sim = network.sim

    # First half of the workload.
    crash_time = start_at + 12.0
    sim.run(until=crash_time)
    victim = crash_leader(network, kind)

    # Second half + drain.
    sim.run(until=start_at + 24 + 8)

    first_half = network.metrics.aggregate(start_at + 2, crash_time)
    second_half = network.metrics.aggregate(crash_time, start_at + 22)
    print(f"--- {kind}: crashed {victim} at t={crash_time:.0f}s ---")
    print(f"  before crash : {first_half.overall_throughput:6.1f} tx/s, "
          f"latency {first_half.overall_latency:.2f}s")
    print(f"  after crash  : {second_half.overall_throughput:6.1f} tx/s, "
          f"latency {second_half.overall_latency:.2f}s, "
          f"rejected {second_half.rejected_rate:.1f} tx/s during failover")
    network.assert_ledgers_consistent()
    heights = {peer.ledger.height for peer in network.peers}
    print(f"  ledgers      : consistent at every peer "
          f"(height {heights.pop()}), no forks\n")


def main() -> None:
    print("Crash-fault tolerance of the distributed ordering services "
          "(§III):\n")
    for kind in ("kafka", "raft"):
        run(kind)
    print("Reading: a leader crash pauses ordering for roughly the "
          "election/session\ntimeout; transactions in flight during the gap "
          "hit the client's 3-second\nordering timeout and are rejected, "
          "then throughput recovers — and no peer\never forks its chain.")


if __name__ == "__main__":
    main()
