#!/usr/bin/env python3
"""Ablation: BatchSize / BatchTimeout vs throughput, latency, block time.

§III defines the two block-cutting conditions; this example sweeps them to
show the trade-off the defaults (BatchSize 100, BatchTimeout 1 s) strike:
small batches commit fast but pay per-block overhead at high load; long
timeouts inflate latency at low load while leaving throughput untouched.

Run:  python examples/batch_tuning.py
"""

from repro import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.common.config import ChannelConfig
from repro.fabric.network import FabricNetwork


def run(batch_size: int, batch_timeout: float, rate: float):
    topology = TopologyConfig(
        num_endorsing_peers=10,
        channel=ChannelConfig(endorsement_policy="OR10"),
        orderer=OrdererConfig(kind="solo", batch_size=batch_size,
                              batch_timeout=batch_timeout))
    workload = WorkloadConfig(arrival_rate=rate, duration=15, warmup=3,
                              cooldown=2)
    network = FabricNetwork(topology, workload, seed=5)
    return network.run_workload()


def main() -> None:
    print("BatchSize sweep at 250 tx/s (BatchTimeout fixed at 1 s):\n")
    print(f"{'batch':>6} {'tput':>8} {'latency':>9} {'block time':>11}")
    for batch_size in (10, 50, 100, 250, 500):
        metrics = run(batch_size, 1.0, 250)
        print(f"{batch_size:6d} {metrics.overall_throughput:8.1f} "
              f"{metrics.overall_latency:8.2f}s {metrics.block_time:10.3f}s")

    print("\nBatchTimeout sweep at 20 tx/s (BatchSize fixed at 100):\n")
    print(f"{'timeout':>8} {'tput':>8} {'latency':>9} {'block time':>11}")
    for batch_timeout in (0.25, 0.5, 1.0, 2.0):
        metrics = run(100, batch_timeout, 20)
        print(f"{batch_timeout:7.2f}s {metrics.overall_throughput:8.1f} "
              f"{metrics.overall_latency:8.2f}s {metrics.block_time:10.3f}s")

    print("\nReading: at high load, block time tracks BatchSize/rate and "
          "tiny batches\nwaste per-block commit overhead; at low load, "
          "blocks cut on the timeout, so\nBatchTimeout sets both block time "
          "(Definition 4.3) and commit latency.")


if __name__ == "__main__":
    main()
