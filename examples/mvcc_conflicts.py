#!/usr/bin/env python3
"""Application-level performance: read-write conflicts under contention.

The paper's §V notes that money-transfer-style workloads must consider
read-write conflicts, though most benchmarks (including the paper's own
1-byte transactions) measure system-level performance with conflict-free
writes.  This example quantifies the difference: it runs the same arrival
rate over key spaces of shrinking size (rising contention) and reports the
MVCC invalidation rate — transactions that are ordered and committed to the
chain but flagged MVCC_READ_CONFLICT and excluded from the world state.

Run:  python examples/mvcc_conflicts.py
"""

from repro import OrdererConfig, TopologyConfig, WorkloadConfig
from repro.common.config import ChannelConfig
from repro.fabric.network import FabricNetwork


def run(key_space: int, skew: float = 0.0):
    topology = TopologyConfig(
        num_endorsing_peers=5,
        channel=ChannelConfig(endorsement_policy="OR(1..n)"),
        orderer=OrdererConfig(kind="solo"))
    workload = WorkloadConfig(arrival_rate=100, duration=15, warmup=2,
                              cooldown=2, key_space=key_space,
                              read_write_conflict_skew=skew)
    network = FabricNetwork(topology, workload, seed=11,
                            workload_kind="conflict")
    return network.run_workload()


def main() -> None:
    print("MVCC read-write conflicts vs key-space contention "
          "(100 tx/s, read-modify-write):\n")
    print(f"{'keys':>8} {'skew':>5} {'goodput':>9} {'invalid/s':>10} "
          f"{'conflict %':>11}")
    for key_space in (10_000, 1_000, 100, 10):
        metrics = run(key_space)
        total = metrics.overall_throughput + metrics.invalid_rate
        share = 100 * metrics.invalid_rate / total if total else 0.0
        print(f"{key_space:8d} {0.0:5.1f} {metrics.overall_throughput:9.1f} "
              f"{metrics.invalid_rate:10.1f} {share:10.1f}%")
    # Skewed access concentrates conflicts even over a large key space.
    metrics = run(10_000, skew=2.5)
    total = metrics.overall_throughput + metrics.invalid_rate
    share = 100 * metrics.invalid_rate / total if total else 0.0
    print(f"{10_000:8d} {2.5:5.1f} {metrics.overall_throughput:9.1f} "
          f"{metrics.invalid_rate:10.1f} {share:10.1f}%")
    print("\nReading: every transaction still consumes full endorsement, "
          "ordering, and\nvalidation resources — but under contention a "
          "growing share is invalidated\nby the MVCC check and contributes "
          "nothing to application goodput.")


if __name__ == "__main__":
    main()
