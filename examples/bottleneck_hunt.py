#!/usr/bin/env python3
"""Bottleneck hunt: reproduce the paper's core finding interactively.

Sweeps the arrival rate over the paper's default deployment under both
endorsement policies and prints, per phase, where throughput stops tracking
the offered load — locating the validate-phase bottleneck (§IV.C) and the
earlier AND knee.  Also cross-checks the measured saturation points against
the closed-form capacity model in :mod:`repro.analysis`.

Run:  python examples/bottleneck_hunt.py
"""

from repro.analysis import CapacityModel
from repro.chaincode.policy import resolve_policy_spec
from repro.experiments.runner import run_point
from repro.runtime.costs import CostModel

PEERS = 10
RATES = [100, 200, 300, 400]


def sweep(policy: str) -> None:
    print(f"--- endorsement policy {policy}, {PEERS} endorsing peers, "
          "solo ordering ---")
    print(f"{'rate':>6} {'execute':>9} {'order':>9} {'validate':>9} "
          f"{'latency':>9}")
    for rate in RATES:
        point = run_point("solo", policy, rate, peers=PEERS, duration=12)
        metrics = point.metrics
        print(f"{rate:6.0f} {metrics.execute_throughput:9.1f} "
              f"{metrics.order_throughput:9.1f} "
              f"{metrics.validate_throughput:9.1f} "
              f"{metrics.overall_latency:8.2f}s")
    print()


def analytical(policy_spec: str, peers: int) -> None:
    names = [f"peer{i}" for i in range(peers)]
    policy = resolve_policy_spec(policy_spec, names)
    capacities = CapacityModel(CostModel()).capacities(policy, peers)
    print(f"analytical capacities for {policy_spec}: "
          f"client={capacities.client:.0f} "
          f"execute={capacities.execute:.0f} "
          f"order={capacities.order:.0f} "
          f"validate={capacities.validate:.0f} "
          f"-> system {capacities.system:.0f} tx/s, "
          f"bottleneck: {capacities.bottleneck}")


def main() -> None:
    print("Hunting the system bottleneck (paper §IV.C: it is the validate "
          "phase).\n")
    for policy in ("OR10", "AND5"):
        analytical(policy, PEERS)
        sweep(policy)
    print("Reading: execute keeps tracking the offered load past the point "
          "where validate\nflattens — the validate phase is the bottleneck, "
          "and it flattens earlier (and\nlower) under AND5 because every "
          "transaction carries five endorsement\nsignatures through VSCC.")


if __name__ == "__main__":
    main()
