"""Shim so editable installs work without the `wheel` package.

The environment is offline; pip cannot fetch `wheel` for PEP 660 editable
builds, so this file enables the legacy ``setup.py develop`` path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
